//! The monitor object: one observed property, its aspects and its
//! event observers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta_bridge::{ActorError, FuncHandle, ScriptActor};
use adapta_idl::Value;
use adapta_orb::{ObjRef, Orb};
use adapta_sim::SimTime;
use parking_lot::Mutex;

use crate::facade;

/// Where a monitor's property value comes from on each tick.
pub(crate) enum ValueSource {
    /// No automatic refresh; only `setValue`.
    Constant,
    /// A native Rust sampler.
    Native(Box<dyn Fn(SimTime) -> Value + Send + Sync>),
    /// A zero-argument script function stored in the actor.
    Script(FuncHandle),
}

pub(crate) enum AspectFn {
    /// Native evaluator: `f(current_value) -> aspect_value`.
    Native(Box<dyn Fn(&Value) -> Value + Send + Sync>),
    /// Script evaluator `function(self, currval, monitor)` with a
    /// persistent `self` table (both stored in the actor).
    Script {
        func: FuncHandle,
        self_table: FuncHandle,
    },
}

struct AspectEntry {
    name: String,
    func: AspectFn,
    last: Value,
}

/// Identifies an attached event observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObserverId(pub u64);

/// Where event notifications go.
pub enum ObserverTarget {
    /// A remote `EventObserver` object (`oneway notifyEvent(evid)`).
    Remote(ObjRef),
    /// A script object (table with a `notifyEvent` method) living in
    /// this monitor's actor — the paper's Figure 4 observer.
    Local(FuncHandle),
    /// A native callback (used by in-process smart proxies).
    Callback(Arc<dyn Fn(&str) + Send + Sync>),
}

impl std::fmt::Debug for ObserverTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObserverTarget::Remote(r) => write!(f, "Remote({r})"),
            ObserverTarget::Local(_) => write!(f, "Local(script)"),
            ObserverTarget::Callback(_) => write!(f, "Callback"),
        }
    }
}

pub(crate) enum PredicateFn {
    /// Native predicate over the current value.
    Native(Box<dyn Fn(&Value) -> bool + Send + Sync>),
    /// Script predicate `function(observer, value, monitor) -> bool`.
    Script(FuncHandle),
}

struct ObserverEntry {
    id: u64,
    target: ObserverTarget,
    event_id: String,
    predicate: PredicateFn,
}

pub(crate) struct MonitorInner {
    property: String,
    period: Duration,
    pub(crate) actor: ScriptActor,
    orb: Orb,
    value: Mutex<Value>,
    source: Mutex<ValueSource>,
    aspects: Mutex<Vec<AspectEntry>>,
    observers: Mutex<Vec<ObserverEntry>>,
    next_observer: AtomicU64,
    notifications: AtomicU64,
    errors: AtomicU64,
    ticks: AtomicU64,
}

/// A monitor for one observed property — `BasicMonitor`,
/// `AspectsManager` and `EventMonitor` in a single object, as in the
/// paper's implementation.
///
/// Cloning yields another handle to the same monitor.
///
/// ```
/// use adapta_monitor::{Monitor, ScriptActor};
/// use adapta_orb::Orb;
/// use adapta_sim::SimTime;
/// use adapta_idl::Value;
///
/// let orb = Orb::new("mon-doc");
/// let actor = ScriptActor::spawn("mon-doc", |_| {});
/// let mon = Monitor::builder("Temp")
///     .source_native(|_now| Value::from(21.5))
///     .build(&actor, &orb)
///     .unwrap();
/// mon.tick(SimTime::ZERO);
/// assert_eq!(mon.value(), Value::from(21.5));
/// ```
#[derive(Clone)]
pub struct Monitor {
    pub(crate) inner: Arc<MonitorInner>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("property", &self.inner.property)
            .field("value", &*self.inner.value.lock())
            .field("aspects", &self.defined_aspects())
            .finish_non_exhaustive()
    }
}

/// Builder for [`Monitor`].
pub struct MonitorBuilder {
    property: String,
    period: Duration,
    initial: Value,
    source_native: Option<Box<dyn Fn(SimTime) -> Value + Send + Sync>>,
    source_script: Option<String>,
    source_handle: Option<FuncHandle>,
}

impl MonitorBuilder {
    /// Sets the refresh period hint (default 60 s, the paper's choice).
    pub fn period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Sets the initial property value.
    pub fn initial(mut self, value: Value) -> Self {
        self.initial = value;
        self
    }

    /// Samples the property with a native closure on each tick.
    pub fn source_native(mut self, f: impl Fn(SimTime) -> Value + Send + Sync + 'static) -> Self {
        self.source_native = Some(Box::new(f));
        self.source_script = None;
        self
    }

    /// Samples the property with a script function (source text) on
    /// each tick — the paper's `EventMonitor:new` update argument.
    pub fn source_script(mut self, code: impl Into<String>) -> Self {
        self.source_script = Some(code.into());
        self.source_native = None;
        self
    }

    /// Samples the property with an already-stored script function
    /// (used by the script-side `EventMonitor.new`).
    pub(crate) fn source_handle(mut self, h: FuncHandle) -> Self {
        self.source_handle = Some(h);
        self.source_native = None;
        self.source_script = None;
        self
    }

    /// Builds the monitor on an actor (script state) and orb.
    ///
    /// # Errors
    ///
    /// Script compilation errors for script sources.
    pub fn build(self, actor: &ScriptActor, orb: &Orb) -> Result<Monitor, ActorError> {
        let source = if let Some(h) = self.source_handle {
            ValueSource::Script(h)
        } else if let Some(code) = self.source_script {
            ValueSource::Script(actor.store_function(&code)?)
        } else if let Some(f) = self.source_native {
            ValueSource::Native(f)
        } else {
            ValueSource::Constant
        };
        Ok(Monitor {
            inner: Arc::new(MonitorInner {
                property: self.property,
                period: self.period,
                actor: actor.clone(),
                orb: orb.clone(),
                value: Mutex::new(self.initial),
                source: Mutex::new(source),
                aspects: Mutex::new(Vec::new()),
                observers: Mutex::new(Vec::new()),
                next_observer: AtomicU64::new(1),
                notifications: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                ticks: AtomicU64::new(0),
            }),
        })
    }
}

impl Monitor {
    /// Starts building a monitor for the named property.
    pub fn builder(property: impl Into<String>) -> MonitorBuilder {
        MonitorBuilder {
            property: property.into(),
            period: Duration::from_secs(60),
            initial: Value::Null,
            source_native: None,
            source_script: None,
            source_handle: None,
        }
    }

    /// The observed property's name.
    pub fn property(&self) -> &str {
        &self.inner.property
    }

    /// The refresh-period hint for drivers.
    pub fn period(&self) -> Duration {
        self.inner.period
    }

    /// The script actor hosting this monitor's dynamic code.
    pub fn actor(&self) -> &ScriptActor {
        &self.inner.actor
    }

    /// The current property value (`getValue`).
    pub fn value(&self) -> Value {
        self.inner.value.lock().clone()
    }

    /// Overwrites the property value (`setValue`).
    pub fn set_value(&self, value: Value) {
        *self.inner.value.lock() = value;
    }

    /// Number of event notifications sent so far.
    pub fn notifications(&self) -> u64 {
        self.inner.notifications.load(Ordering::Relaxed)
    }

    /// Number of ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// Number of update/aspect/predicate evaluation errors so far.
    pub fn errors(&self) -> u64 {
        self.inner.errors.load(Ordering::Relaxed)
    }

    // ---- aspects -------------------------------------------------------

    /// Defines (or replaces) an aspect computed natively.
    pub fn define_aspect_native(
        &self,
        name: impl Into<String>,
        f: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) {
        self.put_aspect(name.into(), AspectFn::Native(Box::new(f)));
    }

    /// Defines (or replaces) an aspect from script source — the
    /// `defineAspect(name, updatef)` of Figure 1. The function is
    /// called as `updatef(self, currval, monitor)` on every tick, with
    /// a persistent `self` table.
    ///
    /// # Errors
    ///
    /// Script compilation errors.
    pub fn define_aspect_script(
        &self,
        name: impl Into<String>,
        code: &str,
    ) -> Result<(), ActorError> {
        let func = self.inner.actor.store_function(code)?;
        let self_table = self
            .inner
            .actor
            .with(|interp| ScriptActor::stored_put(interp, adapta_script::Value::table()))?;
        self.put_aspect(name.into(), AspectFn::Script { func, self_table });
        Ok(())
    }

    pub(crate) fn put_aspect(&self, name: String, func: AspectFn) {
        let mut aspects = self.inner.aspects.lock();
        if let Some(entry) = aspects.iter_mut().find(|a| a.name == name) {
            entry.func = func;
            entry.last = Value::Null;
        } else {
            aspects.push(AspectEntry {
                name,
                func,
                last: Value::Null,
            });
        }
    }

    /// The last computed value of an aspect (`getAspectValue`).
    pub fn aspect_value(&self, name: &str) -> Option<Value> {
        self.inner
            .aspects
            .lock()
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.last.clone())
    }

    /// Names of defined aspects, in definition order (`definedAspects`).
    pub fn defined_aspects(&self) -> Vec<String> {
        self.inner
            .aspects
            .lock()
            .iter()
            .map(|a| a.name.clone())
            .collect()
    }

    // ---- observers -------------------------------------------------------

    /// Attaches an observer with a script predicate
    /// (`attachEventObserver`). The predicate source is evaluated *at
    /// the monitor* — the remote-evaluation paradigm.
    ///
    /// # Errors
    ///
    /// Script compilation errors.
    pub fn attach_observer_script(
        &self,
        target: ObserverTarget,
        event_id: impl Into<String>,
        predicate_code: &str,
    ) -> Result<ObserverId, ActorError> {
        let func = self.inner.actor.store_function(predicate_code)?;
        Ok(self.push_observer(target, event_id.into(), PredicateFn::Script(func)))
    }

    /// Attaches an observer with a native predicate.
    pub fn attach_observer_native(
        &self,
        target: ObserverTarget,
        event_id: impl Into<String>,
        predicate: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> ObserverId {
        self.push_observer(
            target,
            event_id.into(),
            PredicateFn::Native(Box::new(predicate)),
        )
    }

    pub(crate) fn push_observer(
        &self,
        target: ObserverTarget,
        event_id: String,
        predicate: PredicateFn,
    ) -> ObserverId {
        let id = self.inner.next_observer.fetch_add(1, Ordering::Relaxed);
        self.inner.observers.lock().push(ObserverEntry {
            id,
            target,
            event_id,
            predicate,
        });
        ObserverId(id)
    }

    /// Detaches an observer (`detachEventObserver`); returns whether it
    /// existed.
    pub fn detach_observer(&self, id: ObserverId) -> bool {
        let mut observers = self.inner.observers.lock();
        let before = observers.len();
        observers.retain(|o| o.id != id.0);
        observers.len() != before
    }

    /// Number of attached observers.
    pub fn observer_count(&self) -> usize {
        self.inner.observers.lock().len()
    }

    // ---- the tick -------------------------------------------------------

    /// Runs one monitor cycle at time `now`: refresh the property value
    /// from its source, re-evaluate every aspect, then run every
    /// observer's event predicate and notify on `true`.
    ///
    /// Errors in user-supplied code are counted (see
    /// [`errors`](Self::errors)) and never abort the tick.
    pub fn tick(&self, now: SimTime) {
        self.inner.ticks.fetch_add(1, Ordering::Relaxed);
        let registry = adapta_telemetry::registry();
        registry
            .counter(&format!("monitor.{}.ticks", self.property()))
            .incr();
        let cycle = registry.histogram(&format!("monitor.{}.tick_cycle", self.property()));
        let errors_before = self.errors();
        cycle.time(|| {
            self.refresh_value(now);
            self.refresh_aspects();
            self.run_observers();
        });
        let new_errors = self.errors().saturating_sub(errors_before);
        if new_errors > 0 {
            registry
                .counter(&format!("monitor.{}.errors", self.property()))
                .add(new_errors);
        }
    }

    fn refresh_value(&self, now: SimTime) {
        // Decide what to do with the source lock held briefly.
        enum Plan {
            Keep,
            Set(Value),
            CallScript(FuncHandle),
        }
        let plan = {
            let source = self.inner.source.lock();
            match &*source {
                ValueSource::Constant => Plan::Keep,
                ValueSource::Native(f) => Plan::Set(f(now)),
                ValueSource::Script(h) => Plan::CallScript(*h),
            }
        };
        match plan {
            Plan::Keep => {}
            Plan::Set(v) => *self.inner.value.lock() = v,
            Plan::CallScript(h) => match self.inner.actor.call(h, vec![]) {
                Ok(values) => {
                    *self.inner.value.lock() = values.into_iter().next().unwrap_or(Value::Null);
                }
                Err(_) => {
                    self.inner.errors.fetch_add(1, Ordering::Relaxed);
                }
            },
        }
    }

    fn refresh_aspects(&self) {
        let names: Vec<String> = self.defined_aspects();
        for name in names {
            // Snapshot what we need without holding the lock across
            // actor calls (facade natives re-enter these mutexes).
            enum Plan {
                Native(Value),
                Script(FuncHandle, FuncHandle),
                Gone,
            }
            let current = self.value();
            let plan = {
                let aspects = self.inner.aspects.lock();
                match aspects.iter().find(|a| a.name == name) {
                    Some(entry) => match &entry.func {
                        AspectFn::Native(f) => Plan::Native(f(&current)),
                        AspectFn::Script { func, self_table } => Plan::Script(*func, *self_table),
                    },
                    None => Plan::Gone,
                }
            };
            let result = match plan {
                Plan::Gone => continue,
                Plan::Native(v) => Some(v),
                Plan::Script(func, self_table) => {
                    let monitor = self.clone();
                    let out = self.inner.actor.call_with(func, move |interp| {
                        let self_arg = ScriptActor::stored_get(interp, self_table)
                            .unwrap_or(adapta_script::Value::Nil);
                        let currval = adapta_bridge::from_wire(&monitor.value());
                        let facade = facade::monitor_facade(interp, &monitor);
                        vec![self_arg, currval, facade]
                    });
                    match out {
                        Ok(values) => Some(values.into_iter().next().unwrap_or(Value::Null)),
                        Err(_) => {
                            self.inner.errors.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                    }
                }
            };
            if let Some(v) = result {
                let mut aspects = self.inner.aspects.lock();
                if let Some(entry) = aspects.iter_mut().find(|a| a.name == name) {
                    entry.last = v;
                }
            }
        }
    }

    fn run_observers(&self) {
        let ids: Vec<u64> = self.inner.observers.lock().iter().map(|o| o.id).collect();
        for id in ids {
            enum Plan {
                Native(bool),
                Script(FuncHandle),
                Gone,
            }
            let current = self.value();
            let plan = {
                let observers = self.inner.observers.lock();
                match observers.iter().find(|o| o.id == id) {
                    Some(entry) => match &entry.predicate {
                        PredicateFn::Native(f) => Plan::Native(f(&current)),
                        PredicateFn::Script(h) => Plan::Script(*h),
                    },
                    None => Plan::Gone,
                }
            };
            let fired = match plan {
                Plan::Gone => continue,
                Plan::Native(b) => b,
                Plan::Script(h) => {
                    let monitor = self.clone();
                    let observer_arg = {
                        let observers = self.inner.observers.lock();
                        match observers.iter().find(|o| o.id == id).map(|o| &o.target) {
                            Some(ObserverTarget::Remote(r)) => ObserverArg::Remote(r.clone()),
                            Some(ObserverTarget::Local(h)) => ObserverArg::Local(*h),
                            Some(ObserverTarget::Callback(_)) => ObserverArg::None,
                            None => continue,
                        }
                    };
                    let out = self.inner.actor.call_with(h, move |interp| {
                        let obs = match observer_arg {
                            ObserverArg::Remote(r) => adapta_bridge::from_wire(&Value::ObjRef(r)),
                            ObserverArg::Local(h) => ScriptActor::stored_get(interp, h)
                                .unwrap_or(adapta_script::Value::Nil),
                            ObserverArg::None => adapta_script::Value::Nil,
                        };
                        let currval = adapta_bridge::from_wire(&monitor.value());
                        let facade = facade::monitor_facade(interp, &monitor);
                        vec![obs, currval, facade]
                    });
                    match out {
                        Ok(values) => values
                            .first()
                            .map(|v| !matches!(v, Value::Null | Value::Bool(false)))
                            .unwrap_or(false),
                        Err(_) => {
                            self.inner.errors.fetch_add(1, Ordering::Relaxed);
                            false
                        }
                    }
                }
            };
            if fired {
                self.notify(id);
            }
        }
    }

    /// Delivers `notifyEvent` to the observer `id`.
    fn notify(&self, id: u64) {
        enum Delivery {
            Remote(ObjRef, String),
            Local(FuncHandle, String),
            Callback(Arc<dyn Fn(&str) + Send + Sync>, String),
        }
        let delivery = {
            let observers = self.inner.observers.lock();
            let Some(entry) = observers.iter().find(|o| o.id == id) else {
                return;
            };
            match &entry.target {
                ObserverTarget::Remote(r) => Delivery::Remote(r.clone(), entry.event_id.clone()),
                ObserverTarget::Local(h) => Delivery::Local(*h, entry.event_id.clone()),
                ObserverTarget::Callback(f) => {
                    Delivery::Callback(f.clone(), entry.event_id.clone())
                }
            }
        };
        self.inner.notifications.fetch_add(1, Ordering::Relaxed);
        match delivery {
            Delivery::Remote(target, event_id) => {
                if self
                    .inner
                    .orb
                    .invoke_oneway_ref(&target, "notifyEvent", vec![Value::from(event_id)])
                    .is_err()
                {
                    self.inner.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Delivery::Local(h, event_id) => {
                let out = self.inner.actor.with(move |interp| {
                    let Some(table) = ScriptActor::stored_get(interp, h) else {
                        return Err(ActorError::UnknownFunction(0));
                    };
                    let method = table
                        .as_table()
                        .map(|t| t.borrow().get_str("notifyEvent"))
                        .unwrap_or(adapta_script::Value::Nil);
                    interp
                        .call(&method, vec![table, adapta_script::Value::str(&event_id)])
                        .map(|_| ())
                        .map_err(ActorError::from)
                });
                if !matches!(out, Ok(Ok(()))) {
                    self.inner.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Delivery::Callback(f, event_id) => f(&event_id),
        }
    }
}

enum ObserverArg {
    Remote(ObjRef),
    Local(FuncHandle),
    None,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn setup() -> (Orb, ScriptActor) {
        (Orb::new("mon-test"), ScriptActor::spawn("mon-test", |_| {}))
    }

    #[test]
    fn native_source_refreshes_value() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Load")
            .source_native(|now| Value::from(now.as_secs() as f64))
            .build(&actor, &orb)
            .unwrap();
        assert_eq!(mon.value(), Value::Null);
        mon.tick(SimTime::from_secs(5));
        assert_eq!(mon.value(), Value::from(5.0));
        assert_eq!(mon.ticks(), 1);
    }

    #[test]
    fn script_source_refreshes_value() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Seq")
            .source_script("local n = 0\nreturn function() n = n + 1 return n end")
            .build(&actor, &orb)
            .unwrap();
        mon.tick(SimTime::ZERO);
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.value(), Value::Long(2));
    }

    #[test]
    fn constant_monitor_uses_set_value() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Policy")
            .initial(Value::from("strict"))
            .build(&actor, &orb)
            .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.value(), Value::from("strict"));
        mon.set_value(Value::from("lenient"));
        assert_eq!(mon.value(), Value::from("lenient"));
    }

    #[test]
    fn native_aspects_follow_the_value() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Load")
            .source_native(|now| Value::from(now.as_secs() as f64))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_native("Doubled", |v| {
            Value::from(v.as_double().unwrap_or(0.0) * 2.0)
        });
        mon.tick(SimTime::from_secs(3));
        assert_eq!(mon.aspect_value("Doubled"), Some(Value::from(6.0)));
        assert_eq!(mon.defined_aspects(), vec!["Doubled"]);
        assert_eq!(mon.aspect_value("Nope"), None);
    }

    #[test]
    fn script_aspect_gets_self_currval_monitor() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("LoadAvg")
            .source_native(|_| {
                Value::Seq(vec![Value::from(3.0), Value::from(2.0), Value::from(1.0)])
            })
            .build(&actor, &orb)
            .unwrap();
        // The paper's "Increasing" aspect (Figure 3, lines 14-21).
        mon.define_aspect_script(
            "Increasing",
            r#"function(self, currval, monitor)
                if currval[1] > currval[2] then
                    return "yes"
                else
                    return "no"
                end
            end"#,
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.aspect_value("Increasing"), Some(Value::from("yes")));
    }

    #[test]
    fn script_aspect_self_is_persistent() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("X")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_script(
            "Count",
            "function(self, currval, monitor)\nself.n = (self.n or 0) + 1\nreturn self.n\nend",
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        mon.tick(SimTime::ZERO);
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.aspect_value("Count"), Some(Value::Long(3)));
    }

    #[test]
    fn aspect_can_read_other_aspects_via_monitor_facade() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("X")
            .source_native(|_| Value::from(10.0))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_native("Base", |v| v.clone());
        mon.define_aspect_script(
            "BasePlusOne",
            "function(self, currval, monitor)\nreturn monitor:getAspectValue('Base') + 1\nend",
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.aspect_value("BasePlusOne"), Some(Value::Long(11)));
    }

    #[test]
    fn redefining_an_aspect_replaces_it() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("X")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_native("A", |_| Value::from(1i64));
        mon.define_aspect_native("A", |_| Value::from(2i64));
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.defined_aspects().len(), 1);
        assert_eq!(mon.aspect_value("A"), Some(Value::Long(2)));
    }

    #[test]
    fn native_observer_fires_and_detaches() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("Load")
            .source_native(|now| Value::from(now.as_secs() as f64))
            .build(&actor, &orb)
            .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_clone = fired.clone();
        let id = mon.attach_observer_native(
            ObserverTarget::Callback(Arc::new(move |evid| {
                assert_eq!(evid, "LoadIncrease");
                fired_clone.fetch_add(1, Ordering::Relaxed);
            })),
            "LoadIncrease",
            |v| v.as_double().unwrap_or(0.0) > 50.0,
        );
        mon.tick(SimTime::from_secs(10)); // below threshold
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        mon.tick(SimTime::from_secs(60)); // above threshold
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert_eq!(mon.notifications(), 1);
        assert!(mon.detach_observer(id));
        mon.tick(SimTime::from_secs(70));
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert!(!mon.detach_observer(id));
    }

    #[test]
    fn script_predicate_with_aspect_reproduces_fig4() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("LoadAvg")
            .source_native(|now| {
                // Rising load: one-minute average grows with time.
                let l1 = now.as_secs() as f64;
                Value::Seq(vec![
                    Value::from(l1),
                    Value::from(l1 / 2.0),
                    Value::from(0.0),
                ])
            })
            .build(&actor, &orb)
            .unwrap();
        mon.define_aspect_script(
            "Increasing",
            r#"function(self, currval, monitor)
                if currval[1] > currval[2] then return "yes" else return "no" end
            end"#,
        )
        .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_clone = fired.clone();
        // The paper's Figure 4 predicate, verbatim semantics.
        mon.attach_observer_script(
            ObserverTarget::Callback(Arc::new(move |_| {
                fired_clone.fetch_add(1, Ordering::Relaxed);
            })),
            "LoadIncrease",
            r#"function(observer, value, monitor)
                local incr
                incr = monitor:getAspectValue("Increasing")
                return value[1] > 50 and incr == "yes"
            end"#,
        )
        .unwrap();
        mon.tick(SimTime::from_secs(10));
        assert_eq!(fired.load(Ordering::Relaxed), 0, "load below limit");
        mon.tick(SimTime::from_secs(60));
        assert_eq!(fired.load(Ordering::Relaxed), 1, "load high and increasing");
    }

    #[test]
    fn remote_observer_gets_oneway_notification() {
        let (orb, actor) = setup();
        let observer_orb = Orb::new("mon-test-obs");
        observer_orb.set_synchronous_oneway(true);
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let seen_clone = seen.clone();
        let obs_ref = observer_orb
            .activate(
                "obs",
                adapta_orb::ServantFn::new("EventObserver", move |op, args| {
                    assert_eq!(op, "notifyEvent");
                    seen_clone
                        .lock()
                        .push(args[0].as_str().unwrap_or("?").to_owned());
                    Ok(Value::Null)
                }),
            )
            .unwrap();
        let mon = Monitor::builder("Load")
            .source_native(|_| Value::from(99.0))
            .build(&actor, &orb)
            .unwrap();
        mon.attach_observer_native(ObserverTarget::Remote(obs_ref), "Overload", |v| {
            v.as_double().unwrap_or(0.0) > 50.0
        });
        mon.tick(SimTime::ZERO);
        assert_eq!(seen.lock().as_slice(), &["Overload".to_owned()]);
    }

    #[test]
    fn predicate_errors_are_counted_not_fatal() {
        let (orb, actor) = setup();
        let mon = Monitor::builder("X")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        mon.attach_observer_script(
            ObserverTarget::Callback(Arc::new(|_| {})),
            "E",
            "function(o, v, m) error('kaboom') end",
        )
        .unwrap();
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.errors(), 1);
        assert_eq!(mon.notifications(), 0);
        // Monitor still works.
        mon.tick(SimTime::ZERO);
        assert_eq!(mon.ticks(), 2);
    }

    #[test]
    fn bad_source_script_fails_at_build() {
        let (orb, actor) = setup();
        assert!(Monitor::builder("X")
            .source_script("not valid lua ((")
            .build(&actor, &orb)
            .is_err());
    }
}
