//! Extensible monitoring — the LuaMonitor reproduction.
//!
//! A [`Monitor`] represents one observed property (the paper's
//! `BasicMonitor`): it holds a current value, refreshed periodically
//! from a *value source* — a native Rust closure or a script function
//! installed at run time. On top of that:
//!
//! * **aspects** (`AspectsManager`, Figure 1): derived statistics whose
//!   update functions are supplied *as code* at run time
//!   ([`Monitor::define_aspect_script`]) and re-evaluated on every
//!   monitor tick. The paper's example is `Increasing` — whether the
//!   1-minute load average exceeds the 5-minute one;
//! * **event observation** (`EventMonitor`, Figure 2): observers
//!   register with an event id and an *event-diagnosing predicate*
//!   shipped as code and evaluated at the monitor (the remote-evaluation
//!   paradigm). When the predicate fires, the monitor sends a `oneway
//!   notifyEvent(evid)` to the observer;
//! * **dynamic properties**: any monitor doubles as a trading-service
//!   dynamic property through its `evalDP` operation
//!   (see [`MonitorServant`]);
//! * a **script-side API** ([`MonitorHost`]) that lets the paper's
//!   listings run verbatim: `EventMonitor.new(name, updatef, period)`,
//!   `mon:defineAspect(...)`, `mon:attachEventObserver(...)`;
//! * the **LoadAverage monitor** of Figure 3 ([`load_average_monitor`]),
//!   reading a synthetic `/proc/loadavg` backed by a simulated host.
//!
//! Monitors are passive with respect to time: something must call
//! [`Monitor::tick`]. Use [`MonitorDriver`] for wall-clock deployments
//! or drive ticks from a simulation scheduler for deterministic
//! experiments.

mod driver;
mod facade;
mod guard;
mod loadavg;
mod monitor;
mod servant;

pub use adapta_bridge::{ActorError, ScriptActor};
pub use driver::MonitorDriver;
pub use facade::MonitorHost;
pub use loadavg::{load_average_monitor, loadavg_reader, LOAD_AVERAGE_MONITOR_SOURCE};
pub use monitor::{
    Monitor, MonitorBuilder, ObserverId, ObserverTarget, EVICT_AFTER_FAILED_PUSHES,
    MAX_INSTALLS_PER_INSTALLER, OBSERVER_QUEUE_CAP,
};
pub use servant::MonitorServant;
