//! The monitor as a remote object and as a trading dynamic property.

use adapta_idl::Value;
use adapta_orb::{OrbError, OrbResult, Servant};

use crate::monitor::{Monitor, ObserverId, ObserverTarget};

/// Exposes a [`Monitor`] over the ORB.
///
/// Implements the union of the paper's interfaces (Figures 1 and 2):
///
/// * `BasicMonitor` — `getValue`, `setValue`;
/// * `AspectsManager` — `getAspectValue`, `definedAspects`,
///   `defineAspect(name, code)`;
/// * `EventMonitor` — `attachEventObserver(observer, evid, code)`,
///   `detachEventObserver(id)`;
/// * the trading dynamic-property hook — `evalDP(name)` returns the
///   property value (for the monitor's own property name) or an aspect
///   value, which is what lets a service agent export the monitor
///   directly as a dynamic property of its offers.
///
/// The `code` parameters are script source shipped by remote clients —
/// the remote-evaluation paradigm. They are compiled into the monitor's
/// script state on arrival.
#[derive(Debug, Clone)]
pub struct MonitorServant {
    monitor: Monitor,
}

impl MonitorServant {
    /// Wraps a monitor for remote access.
    pub fn new(monitor: Monitor) -> Self {
        MonitorServant { monitor }
    }

    /// The wrapped monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }
}

fn str_arg(args: &[Value], i: usize, op: &str) -> OrbResult<String> {
    args.get(i)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| OrbError::exception(format!("{op}: argument {i} must be a string")))
}

impl Servant for MonitorServant {
    fn interface(&self) -> &str {
        "EventMonitor"
    }

    fn invoke(&self, op: &str, args: Vec<Value>) -> OrbResult<Value> {
        match op {
            // Both spellings appear in the paper's listings.
            "getValue" | "getvalue" => Ok(self.monitor.value()),
            "setValue" | "setvalue" => {
                self.monitor
                    .set_value(args.into_iter().next().unwrap_or(Value::Null));
                Ok(Value::Null)
            }
            "getAspectValue" => {
                let name = str_arg(&args, 0, "getAspectValue")?;
                Ok(self.monitor.aspect_value(&name).unwrap_or(Value::Null))
            }
            "definedAspects" => Ok(Value::Seq(
                self.monitor
                    .defined_aspects()
                    .into_iter()
                    .map(Value::from)
                    .collect(),
            )),
            "defineAspect" => {
                let name = str_arg(&args, 0, "defineAspect")?;
                let code = str_arg(&args, 1, "defineAspect")?;
                // Shipped code: run it in the sandboxed actor, charged
                // to the remote installer's quota.
                self.monitor
                    .define_aspect_script_remote("remote", name, &code)
                    .map_err(|e| OrbError::exception(e.to_string()))?;
                Ok(Value::Null)
            }
            "attachEventObserver" => {
                let observer = args
                    .first()
                    .and_then(Value::as_objref)
                    .cloned()
                    .ok_or_else(|| {
                        OrbError::exception(
                            "attachEventObserver: observer must be an object reference",
                        )
                    })?;
                let event_id = str_arg(&args, 1, "attachEventObserver")?;
                let code = str_arg(&args, 2, "attachEventObserver")?;
                // Quota installs by the observer's node so one pushy
                // client cannot crowd out the others.
                let installer = observer.endpoint.clone();
                let id = self
                    .monitor
                    .attach_observer_script_remote(
                        &installer,
                        ObserverTarget::Remote(observer),
                        event_id,
                        &code,
                    )
                    .map_err(|e| OrbError::exception(e.to_string()))?;
                Ok(Value::Long(id.0 as i64))
            }
            "detachEventObserver" => {
                let id = args.first().and_then(Value::as_long).ok_or_else(|| {
                    OrbError::exception("detachEventObserver: id must be a number")
                })?;
                Ok(Value::Bool(
                    self.monitor.detach_observer(ObserverId(id as u64)),
                ))
            }
            "evalDP" => {
                let name = str_arg(&args, 0, "evalDP")?;
                // Aspects take precedence: an aspect may refine the raw
                // property under the same name (e.g. a scalar `LoadAvg`
                // over the 3-tuple property).
                if let Some(v) = self.monitor.aspect_value(&name) {
                    Ok(v)
                } else if name == self.monitor.property() {
                    Ok(self.monitor.value())
                } else {
                    Err(OrbError::exception(format!(
                        "no property or aspect named `{name}`"
                    )))
                }
            }
            other => Err(OrbError::unknown_operation("EventMonitor", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_bridge::ScriptActor;
    use adapta_orb::Orb;
    use adapta_sim::SimTime;

    fn serve_monitor() -> (Orb, Orb, Monitor, adapta_orb::Proxy) {
        let server = Orb::new("msvnt-server");
        let actor = ScriptActor::spawn("msvnt", |_| {});
        let monitor = Monitor::builder("LoadAvg")
            .source_native(|now| Value::from(now.as_secs() as f64))
            .build(&actor, &server)
            .unwrap();
        let objref = server
            .activate("mon", MonitorServant::new(monitor.clone()))
            .unwrap();
        let client = Orb::new("msvnt-client");
        let proxy = client.proxy(&objref);
        (server, client, monitor, proxy)
    }

    #[test]
    fn get_set_value_remotely() {
        let (_s, _c, monitor, proxy) = serve_monitor();
        monitor.tick(SimTime::from_secs(42));
        assert_eq!(proxy.invoke("getValue", vec![]).unwrap(), Value::from(42.0));
        proxy.invoke("setValue", vec![Value::from(7.0)]).unwrap();
        assert_eq!(monitor.value(), Value::from(7.0));
    }

    #[test]
    fn remote_define_aspect_runs_shipped_code() {
        let (_s, _c, monitor, proxy) = serve_monitor();
        proxy
            .invoke(
                "defineAspect",
                vec![
                    Value::from("High"),
                    Value::from("function(self, currval, monitor) return currval > 30 end"),
                ],
            )
            .unwrap();
        monitor.tick(SimTime::from_secs(50));
        assert_eq!(
            proxy
                .invoke("getAspectValue", vec![Value::from("High")])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            proxy.invoke("definedAspects", vec![]).unwrap(),
            Value::Seq(vec![Value::from("High")])
        );
        assert_eq!(
            proxy
                .invoke("getAspectValue", vec![Value::from("Nope")])
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn remote_attach_detach_observer() {
        let (_s, client, monitor, proxy) = serve_monitor();
        client.set_synchronous_oneway(true);
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(0u32));
        let seen_clone = seen.clone();
        let obs_ref = client
            .activate(
                "obs",
                adapta_orb::ServantFn::new("EventObserver", move |_, _| {
                    *seen_clone.lock() += 1;
                    Ok(Value::Null)
                }),
            )
            .unwrap();
        let id = proxy
            .invoke(
                "attachEventObserver",
                vec![
                    Value::ObjRef(obs_ref),
                    Value::from("Overload"),
                    Value::from("function(o, v, m) return v > 50 end"),
                ],
            )
            .unwrap();
        monitor.tick(SimTime::from_secs(10));
        assert_eq!(*seen.lock(), 0);
        monitor.tick(SimTime::from_secs(100));
        assert_eq!(*seen.lock(), 1);
        assert_eq!(
            proxy.invoke("detachEventObserver", vec![id]).unwrap(),
            Value::Bool(true)
        );
        monitor.tick(SimTime::from_secs(200));
        assert_eq!(*seen.lock(), 1);
    }

    #[test]
    fn eval_dp_serves_property_and_aspects() {
        let (_s, _c, monitor, proxy) = serve_monitor();
        monitor.define_aspect_native("Doubled", |v| {
            Value::from(v.as_double().unwrap_or(0.0) * 2.0)
        });
        monitor.tick(SimTime::from_secs(21));
        assert_eq!(
            proxy
                .invoke("evalDP", vec![Value::from("LoadAvg")])
                .unwrap(),
            Value::from(21.0)
        );
        assert_eq!(
            proxy
                .invoke("evalDP", vec![Value::from("Doubled")])
                .unwrap(),
            Value::from(42.0)
        );
        assert!(proxy.invoke("evalDP", vec![Value::from("Nope")]).is_err());
    }

    #[test]
    fn unknown_operation_is_rejected() {
        let (_s, _c, _m, proxy) = serve_monitor();
        assert!(proxy.invoke("frobnicate", vec![]).is_err());
    }
}
