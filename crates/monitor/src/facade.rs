//! The script-side monitoring API.
//!
//! [`MonitorHost`] owns one script state (a
//! [`ScriptActor`](adapta_bridge::ScriptActor)) with the monitor API
//! installed, so the paper's listings run verbatim:
//!
//! ```lua
//! lmon = EventMonitor:new("LoadAvg", function() ... end, 60)
//! lmon:defineAspect("Increasing", [[function(self, currval, monitor) ... end]])
//! lmon:attachEventObserver(observer, "LoadIncrease", [[function(o, v, m) ... end]])
//! ```
//!
//! Facade tables returned to scripts delegate to the Rust
//! [`Monitor`]; monitors created from script are registered with the
//! host so Rust code can drive their ticks.

use std::sync::Arc;
use std::time::Duration;

use adapta_bridge::{ActorError, ScriptActor};
use adapta_idl::ObjRefData;
use adapta_orb::Orb;
use adapta_script::{Interpreter, Table, Value as Script};
use adapta_sim::SimTime;
use parking_lot::Mutex;

use crate::monitor::{Monitor, ObserverTarget, PredicateFn};

/// Builds the script-facing facade table for a monitor.
///
/// Runs on the actor thread (callers pass the interpreter from inside a
/// `with`/`call_with` closure). `actor` is the actor hosting that
/// interpreter — code compiled by `defineAspect`/`attachEventObserver`
/// lives there — and `installer` is the identity installs are charged
/// to (remote installers are quota-checked, `"local"` is not).
pub(crate) fn monitor_facade(
    _interp: &mut Interpreter,
    monitor: &Monitor,
    actor: &ScriptActor,
    installer: &str,
) -> Script {
    let table = Table::new();
    let t = std::rc::Rc::new(std::cell::RefCell::new(table));

    let set = |t: &std::rc::Rc<std::cell::RefCell<Table>>, name: &str, v: Script| {
        t.borrow_mut().set_str(name, v);
    };

    // getValue / getvalue (the paper mixes the spellings).
    for spelling in ["getValue", "getvalue"] {
        let m = monitor.clone();
        set(
            &t,
            spelling,
            Interpreter::native(spelling, move |_, _args| {
                Ok(vec![adapta_bridge::from_wire(&m.value())])
            }),
        );
    }

    for spelling in ["setValue", "setvalue"] {
        let m = monitor.clone();
        set(
            &t,
            spelling,
            Interpreter::native(spelling, move |_, args| {
                // args[0] is the facade (method-call self).
                let v = args.get(1).cloned().unwrap_or(Script::Nil);
                m.set_value(adapta_bridge::to_wire(&v));
                Ok(vec![])
            }),
        );
    }

    {
        let m = monitor.clone();
        set(
            &t,
            "getAspectValue",
            Interpreter::native("getAspectValue", move |_, args| {
                let name = args
                    .get(1)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .unwrap_or_default();
                let v = m.aspect_value(&name).unwrap_or(adapta_idl::Value::Null);
                Ok(vec![adapta_bridge::from_wire(&v)])
            }),
        );
    }

    {
        let m = monitor.clone();
        set(
            &t,
            "definedAspects",
            Interpreter::native("definedAspects", move |_, _| {
                let mut out = Table::new();
                for name in m.defined_aspects() {
                    out.push(Script::str(name));
                }
                Ok(vec![Script::Table(std::rc::Rc::new(
                    std::cell::RefCell::new(out),
                ))])
            }),
        );
    }

    {
        let m = monitor.clone();
        let a = actor.clone();
        let who = installer.to_owned();
        set(
            &t,
            "defineAspect",
            Interpreter::native("defineAspect", move |interp, args| {
                let name = args
                    .get(1)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .ok_or_else(|| {
                        adapta_script::RuaError::runtime("defineAspect: name expected", 0)
                    })?;
                if who != "local" {
                    m.check_quota(&who)
                        .map_err(|e| adapta_script::RuaError::runtime(e.to_string(), 0))?;
                }
                let func = compile_code_arg(interp, args.get(2))?;
                let self_table = ScriptActor::stored_put(interp, Script::table());
                m.put_aspect(
                    name,
                    who.clone(),
                    crate::monitor::AspectFn::Script {
                        actor: a.clone(),
                        func,
                        self_table,
                    },
                );
                Ok(vec![])
            }),
        );
    }

    {
        let m = monitor.clone();
        let a = actor.clone();
        let who = installer.to_owned();
        set(
            &t,
            "attachEventObserver",
            Interpreter::native("attachEventObserver", move |interp, args| {
                let observer = args.get(1).cloned().unwrap_or(Script::Nil);
                let event_id = args
                    .get(2)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .ok_or_else(|| {
                        adapta_script::RuaError::runtime(
                            "attachEventObserver: event id expected",
                            0,
                        )
                    })?;
                if who != "local" {
                    m.check_quota(&who)
                        .map_err(|e| adapta_script::RuaError::runtime(e.to_string(), 0))?;
                }
                let predicate = compile_code_arg(interp, args.get(3))?;
                let target = observer_target(interp, observer)?;
                let id = m.push_observer(
                    target,
                    event_id,
                    who.clone(),
                    PredicateFn::Script {
                        actor: a.clone(),
                        func: predicate,
                    },
                );
                Ok(vec![Script::Num(id.0 as f64)])
            }),
        );
    }

    {
        let m = monitor.clone();
        set(
            &t,
            "detachEventObserver",
            Interpreter::native("detachEventObserver", move |_, args| {
                let id = args.get(1).and_then(Script::as_num).unwrap_or(0.0) as u64;
                Ok(vec![Script::Bool(
                    m.detach_observer(crate::monitor::ObserverId(id)),
                )])
            }),
        );
    }

    set(&t, "__property", Script::str(monitor.property()));
    Script::Table(t)
}

/// Accepts either a function value or a source-code string (the
/// remote-evaluation form) and returns a stored handle.
fn compile_code_arg(
    interp: &mut Interpreter,
    arg: Option<&Script>,
) -> std::result::Result<adapta_bridge::FuncHandle, adapta_script::RuaError> {
    match arg {
        Some(v @ (Script::Function(_) | Script::Native(_))) => {
            Ok(ScriptActor::stored_put(interp, v.clone()))
        }
        Some(Script::Str(code)) => {
            let f = interp.compile_function(code)?;
            Ok(ScriptActor::stored_put(interp, f))
        }
        other => Err(adapta_script::RuaError::runtime(
            format!(
                "expected a function or code string, got {}",
                other.map(|v| v.type_name()).unwrap_or("nothing")
            ),
            0,
        )),
    }
}

/// Classifies a script-side observer argument: a `__ref` table is a
/// remote observer; any other table is a local script observer.
fn observer_target(
    interp: &mut Interpreter,
    observer: Script,
) -> std::result::Result<ObserverTarget, adapta_script::RuaError> {
    if let Some(t) = observer.as_table() {
        let uri = t.borrow().get_str("__ref");
        if let Script::Str(uri) = uri {
            if let Some(data) = ObjRefData::from_uri(&uri) {
                return Ok(ObserverTarget::Remote(data));
            }
        }
        return Ok(ObserverTarget::Local(ScriptActor::stored_put(
            interp, observer,
        )));
    }
    Err(adapta_script::RuaError::runtime(
        "observer must be a table (remote reference or local object)",
        0,
    ))
}

/// A script state with the monitoring API installed, plus a registry of
/// the monitors created from script.
///
/// One `MonitorHost` corresponds to one machine in the paper's
/// deployment: the host where service agents run their configuration
/// scripts and monitors sample local conditions.
#[derive(Clone)]
pub struct MonitorHost {
    actor: ScriptActor,
    orb: Orb,
    monitors: Arc<Mutex<Vec<Monitor>>>,
}

impl std::fmt::Debug for MonitorHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorHost")
            .field("monitors", &self.monitors.lock().len())
            .finish_non_exhaustive()
    }
}

impl MonitorHost {
    /// Creates a host with a fresh script state.
    pub fn new(name: &str, orb: &Orb) -> MonitorHost {
        Self::with_setup(name, orb, |_| {})
    }

    /// Creates a host whose interpreter gets extra setup (readers,
    /// natives, clocks) before the monitor API is installed.
    pub fn with_setup(
        name: &str,
        orb: &Orb,
        setup: impl FnOnce(&mut Interpreter) + Send + 'static,
    ) -> MonitorHost {
        let actor = ScriptActor::spawn(name, setup);
        let host = MonitorHost {
            actor: actor.clone(),
            orb: orb.clone(),
            monitors: Arc::new(Mutex::new(Vec::new())),
        };
        host.install_api();
        host
    }

    fn install_api(&self) {
        let host = self.clone();
        self.actor
            .with(move |interp| {
                let ctor_host = host.clone();
                let new_native = Interpreter::native("EventMonitor.new", move |interp, args| {
                    // Accept both `EventMonitor.new(...)` and
                    // `EventMonitor:new(...)`: skip a leading table that
                    // is the class itself.
                    let args: Vec<Script> = match args.first() {
                        Some(Script::Table(t))
                            if matches!(
                                t.borrow().get_str("__class"),
                                Script::Str(ref s) if &**s == "EventMonitor"
                            ) =>
                        {
                            args[1..].to_vec()
                        }
                        _ => args,
                    };
                    let name = args
                        .first()
                        .and_then(|v| v.as_str().map(str::to_owned))
                        .ok_or_else(|| {
                            adapta_script::RuaError::runtime(
                                "EventMonitor.new: property name expected",
                                0,
                            )
                        })?;
                    let update = compile_code_arg(interp, args.get(1))?;
                    let period = args.get(2).and_then(Script::as_num).unwrap_or(60.0);
                    let monitor = Monitor::builder(&name)
                        .period(Duration::from_secs_f64(period.max(0.001)))
                        .source_handle(update)
                        .build(&ctor_host.actor, &ctor_host.orb)
                        .map_err(|e| adapta_script::RuaError::runtime(e.to_string(), 0))?;
                    ctor_host.monitors.lock().push(monitor.clone());
                    Ok(vec![monitor_facade(
                        interp,
                        &monitor,
                        &ctor_host.actor,
                        "local",
                    )])
                });
                let mut class = Table::new();
                class.set_str("__class", Script::str("EventMonitor"));
                class.set_str("new", new_native);
                let class = Script::Table(std::rc::Rc::new(std::cell::RefCell::new(class)));
                interp.set_global("EventMonitor", class.clone());
                // BasicMonitor is the same constructor in this
                // implementation (every monitor supports events).
                interp.set_global("BasicMonitor", class);
            })
            .expect("install monitor api");
    }

    /// The underlying script actor.
    pub fn actor(&self) -> &ScriptActor {
        &self.actor
    }

    /// The orb notifications go through.
    pub fn orb(&self) -> &Orb {
        &self.orb
    }

    /// Runs a script on the host (agents' configuration scripts).
    ///
    /// # Errors
    ///
    /// Script errors.
    pub fn eval(&self, source: &str) -> Result<Vec<adapta_idl::Value>, ActorError> {
        self.actor.eval(source)
    }

    /// Registers a natively-built monitor with this host (so
    /// [`tick_all`](Self::tick_all) drives it too).
    pub fn register(&self, monitor: Monitor) {
        self.monitors.lock().push(monitor);
    }

    /// Snapshot of the host's monitors.
    pub fn monitors(&self) -> Vec<Monitor> {
        self.monitors.lock().clone()
    }

    /// Finds a monitor by observed property name.
    pub fn monitor(&self, property: &str) -> Option<Monitor> {
        self.monitors
            .lock()
            .iter()
            .find(|m| m.property() == property)
            .cloned()
    }

    /// Ticks every registered monitor at `now`.
    pub fn tick_all(&self, now: SimTime) {
        for monitor in self.monitors() {
            monitor.tick(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_monitor_new_from_script() {
        let orb = Orb::new("facade-test");
        let host = MonitorHost::new("facade-test", &orb);
        host.eval(
            r#"
            lmon = EventMonitor:new("LoadAvg", function() return {1.5, 1.0, 0.5} end, 60)
        "#,
        )
        .unwrap();
        let mon = host.monitor("LoadAvg").expect("monitor registered");
        assert_eq!(mon.period(), Duration::from_secs(60));
        mon.tick(SimTime::ZERO);
        let out = host.eval("return lmon:getValue()[1]").unwrap();
        assert_eq!(out, vec![adapta_idl::Value::Double(1.5)]);
    }

    #[test]
    fn dot_call_also_works() {
        let orb = Orb::new("facade-dot");
        let host = MonitorHost::new("facade-dot", &orb);
        host.eval(r#"m = EventMonitor.new("X", function() return 7 end, 1)"#)
            .unwrap();
        host.tick_all(SimTime::ZERO);
        assert_eq!(
            host.eval("return m:getvalue()").unwrap(),
            vec![adapta_idl::Value::Long(7)]
        );
    }

    #[test]
    fn define_aspect_from_script() {
        let orb = Orb::new("facade-aspect");
        let host = MonitorHost::new("facade-aspect", &orb);
        host.eval(
            r#"
            m = EventMonitor:new("L", function() return {3, 1} end, 1)
            m:defineAspect("Increasing", [[function(self, currval, monitor)
                if currval[1] > currval[2] then return "yes" else return "no" end
            end]])
        "#,
        )
        .unwrap();
        host.tick_all(SimTime::ZERO);
        assert_eq!(
            host.eval("return m:getAspectValue('Increasing')").unwrap(),
            vec![adapta_idl::Value::Str("yes".into())]
        );
        assert_eq!(
            host.eval("return m:definedAspects()[1]").unwrap(),
            vec![adapta_idl::Value::Str("Increasing".into())]
        );
    }

    #[test]
    fn local_script_observer_is_notified() {
        let orb = Orb::new("facade-obs");
        let host = MonitorHost::new("facade-obs", &orb);
        // Figure 4, with a local observer object.
        host.eval(
            r#"
            notified = {}
            eventobserver = {notifyEvent = function(self, event)
                table.insert(notified, event)
            end}
            m = EventMonitor:new("Load", function() return 80 end, 1)
            m:attachEventObserver(eventobserver, "LoadIncrease",
                [[function(observer, value, monitor)
                    return value > 50
                end]])
        "#,
        )
        .unwrap();
        host.tick_all(SimTime::ZERO);
        assert_eq!(
            host.eval("return notified[1]").unwrap(),
            vec![adapta_idl::Value::Str("LoadIncrease".into())]
        );
    }

    #[test]
    fn detach_from_script() {
        let orb = Orb::new("facade-detach");
        let host = MonitorHost::new("facade-detach", &orb);
        host.eval(
            r#"
            count = 0
            obs = {notifyEvent = function(self, e) count = count + 1 end}
            m = EventMonitor:new("L", function() return 99 end, 1)
            id = m:attachEventObserver(obs, "E", [[function(o, v, m) return true end]])
        "#,
        )
        .unwrap();
        host.tick_all(SimTime::ZERO);
        host.eval("m:detachEventObserver(id)").unwrap();
        host.tick_all(SimTime::ZERO);
        assert_eq!(
            host.eval("return count").unwrap(),
            vec![adapta_idl::Value::Long(1)]
        );
    }

    #[test]
    fn predicate_passed_as_function_value() {
        let orb = Orb::new("facade-fnval");
        let host = MonitorHost::new("facade-fnval", &orb);
        host.eval(
            r#"
            hits = 0
            obs = {notifyEvent = function(self, e) hits = hits + 1 end}
            m = EventMonitor:new("L", function() return 10 end, 1)
            m:attachEventObserver(obs, "E", function(o, v, mon) return v == 10 end)
        "#,
        )
        .unwrap();
        host.tick_all(SimTime::ZERO);
        assert_eq!(
            host.eval("return hits").unwrap(),
            vec![adapta_idl::Value::Long(1)]
        );
    }

    #[test]
    fn set_value_from_script() {
        let orb = Orb::new("facade-setv");
        let host = MonitorHost::new("facade-setv", &orb);
        host.eval(r#"m = BasicMonitor:new("P", function() return nil end, 1)"#)
            .unwrap();
        let mon = host.monitor("P").unwrap();
        host.eval("m:setValue(123)").unwrap();
        assert_eq!(mon.value(), adapta_idl::Value::Long(123));
    }
}
