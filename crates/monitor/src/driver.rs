//! Wall-clock driving of monitors.
//!
//! Monitors are passive ([`Monitor::tick`] must be called). In a real
//! deployment the paper's "internal timing mechanism" is this driver: a
//! thread ticking the monitor every period. Simulated experiments skip
//! the driver and schedule ticks on a virtual clock instead.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adapta_sim::Clock;

use crate::monitor::Monitor;

/// A background thread ticking a monitor at its period.
///
/// The driver stops when dropped (the thread exits after at most one
/// more period).
#[derive(Debug)]
pub struct MonitorDriver {
    stop: Arc<AtomicBool>,
}

impl MonitorDriver {
    /// Starts driving `monitor` every `period` under `clock`.
    pub fn start(monitor: Monitor, clock: Arc<dyn Clock>, period: Duration) -> MonitorDriver {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        std::thread::Builder::new()
            .name(format!("mon-driver-{}", monitor.property()))
            .spawn(move || loop {
                clock.sleep(period);
                if stop_flag.load(Ordering::Relaxed) {
                    return;
                }
                monitor.tick(clock.now());
            })
            .expect("spawn monitor driver");
        MonitorDriver { stop }
    }

    /// Starts driving at the monitor's own period hint.
    pub fn start_default(monitor: Monitor, clock: Arc<dyn Clock>) -> MonitorDriver {
        let period = monitor.period();
        Self::start(monitor, clock, period)
    }

    /// Stops the driver (also happens on drop).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for MonitorDriver {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_bridge::ScriptActor;
    use adapta_idl::Value;
    use adapta_orb::Orb;
    use adapta_sim::RealClock;

    #[test]
    fn driver_ticks_until_stopped() {
        let orb = Orb::new("driver-test");
        let actor = ScriptActor::spawn("driver-test", |_| {});
        let monitor = Monitor::builder("T")
            .source_native(|_| Value::from(1.0))
            .build(&actor, &orb)
            .unwrap();
        let clock: Arc<dyn Clock> = Arc::new(RealClock::new());
        let driver = MonitorDriver::start(monitor.clone(), clock, Duration::from_millis(5));
        for _ in 0..200 {
            if monitor.ticks() >= 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(monitor.ticks() >= 3, "driver should have ticked");
        driver.stop();
        let after_stop = monitor.ticks();
        std::thread::sleep(Duration::from_millis(50));
        // Allow at most one in-flight tick after stop.
        assert!(monitor.ticks() <= after_stop + 1);
    }
}
