//! The LoadAverage event monitor of the paper's Figure 3, verbatim.
//!
//! The original listing reads `/proc/loadavg` on a Linux host. Here the
//! same script runs against a [`SimHost`]'s synthetic `/proc/loadavg`
//! (via the interpreter's pluggable reader), preserving the exact code
//! path: script `readfrom`/`read("*n")`, a table of three averages, and
//! the `Increasing` aspect comparing the 1-minute with the 5-minute
//! average.

use std::sync::Arc;

use adapta_sim::{Clock, SimHost};

use crate::facade::MonitorHost;
use crate::monitor::Monitor;
use crate::ActorError;

/// Figure 3 of the paper, as Rua source (syntax identical to the Lua
/// original except `EventMonitor:new`'s argument list, which is
/// unchanged).
pub const LOAD_AVERAGE_MONITOR_SOURCE: &str = r#"
function LoadAverageMonitor()
    local lmon
    lmon = EventMonitor:new("LoadAvg",
        function()
            readfrom("/proc/loadavg")
            local nj1,nj5,nj15 = read("*n","*n","*n")
            readfrom()
            return {nj1,nj5,nj15}
        end,
        60) -- update values every minute

    -- create an aspect that represents the tendency to
    -- increase the load in the host
    lmon:defineAspect("Increasing",
        [[function(self, currval, monitor)
            if currval[1] > currval[2] then
                return "yes"
            else
                return "no"
            end
        end]])
    return lmon
end
"#;

/// Builds a `readfrom` reader serving a synthetic `/proc/loadavg` for a
/// simulated host: `"<1min> <5min> <15min> <running>/<total> <pid>"`.
pub fn loadavg_reader(
    host: SimHost,
    clock: Arc<dyn Clock>,
) -> impl Fn(&str) -> Option<String> + Send + Sync + 'static {
    move |path: &str| {
        if path != "/proc/loadavg" {
            return None;
        }
        let now = clock.now();
        let (one, five, fifteen) = host.load_avg(now);
        let running = host.ready_len(now).round() as u64;
        Some(format!(
            "{one:.2} {five:.2} {fifteen:.2} {running}/128 4242"
        ))
    }
}

/// Creates the paper's LoadAverage event monitor on a monitor host
/// whose reader serves `/proc/loadavg` (see
/// [`MonitorHost::with_setup`] + [`loadavg_reader`]).
///
/// # Errors
///
/// Script errors (e.g. no reader installed).
pub fn load_average_monitor(host: &MonitorHost) -> Result<Monitor, ActorError> {
    host.eval(LOAD_AVERAGE_MONITOR_SOURCE)?;
    host.eval("__lmon = LoadAverageMonitor()")?;
    host.monitor("LoadAvg")
        .ok_or_else(|| ActorError::Script("LoadAverageMonitor did not register".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_orb::Orb;
    use adapta_sim::{SimTime, VirtualClock};
    use std::time::Duration;

    fn setup() -> (Orb, VirtualClock, SimHost, MonitorHost) {
        let orb = Orb::new("loadavg-test");
        let clock = VirtualClock::new();
        let host = SimHost::new("node1", Duration::from_millis(20));
        let reader = loadavg_reader(host.clone(), Arc::new(clock.clone()));
        let mhost = MonitorHost::with_setup("loadavg-test", &orb, move |interp| {
            interp.set_reader(reader);
        });
        (orb, clock, host, mhost)
    }

    #[test]
    fn fig3_monitor_reads_synthetic_proc_loadavg() {
        let (_orb, clock, host, mhost) = setup();
        let monitor = load_average_monitor(&mhost).unwrap();
        assert_eq!(monitor.period(), Duration::from_secs(60));

        // Sustained background load of 3 jobs for 2 minutes.
        host.set_background(SimTime::ZERO, 3.0);
        clock.advance(Duration::from_secs(120));
        monitor.tick(clock.now());

        let value = monitor.value();
        let one = value.at(0).and_then(|v| v.as_double()).unwrap();
        let five = value.at(1).and_then(|v| v.as_double()).unwrap();
        assert!(one > 2.0, "1-min avg should approach 3, got {one}");
        assert!(one > five, "1-min reacts faster than 5-min");
        assert_eq!(
            monitor.aspect_value("Increasing"),
            Some(adapta_idl::Value::Str("yes".into()))
        );
    }

    #[test]
    fn increasing_flips_to_no_when_load_drops() {
        let (_orb, clock, host, mhost) = setup();
        let monitor = load_average_monitor(&mhost).unwrap();
        host.set_background(SimTime::ZERO, 4.0);
        clock.advance(Duration::from_secs(300));
        host.set_background(clock.now(), 0.0);
        clock.advance(Duration::from_secs(120));
        monitor.tick(clock.now());
        assert_eq!(
            monitor.aspect_value("Increasing"),
            Some(adapta_idl::Value::Str("no".into()))
        );
    }

    #[test]
    fn reader_only_serves_proc_loadavg() {
        let clock = VirtualClock::new();
        let host = SimHost::new("n", Duration::from_millis(1));
        let reader = loadavg_reader(host, Arc::new(clock));
        assert!(reader("/proc/loadavg").is_some());
        assert!(reader("/etc/passwd").is_none());
    }

    #[test]
    fn reader_format_matches_linux() {
        let clock = VirtualClock::new();
        let host = SimHost::new("n", Duration::from_millis(1));
        host.set_background(SimTime::ZERO, 2.0);
        let reader = loadavg_reader(host, Arc::new(clock));
        let line = reader("/proc/loadavg").unwrap();
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields.len(), 5);
        assert!(fields[3].contains('/'));
        fields[0].parse::<f64>().unwrap();
    }
}
