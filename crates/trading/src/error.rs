//! Trading-service errors.

use std::error::Error;
use std::fmt;

use adapta_orb::OrbError;

/// Errors raised by the trading service.
#[derive(Debug, Clone, PartialEq)]
pub enum TradingError {
    /// The service type is not registered.
    UnknownServiceType(String),
    /// A service type with this name already exists.
    DuplicateServiceType(String),
    /// The constraint expression failed to parse.
    IllegalConstraint {
        /// The constraint source.
        constraint: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The preference expression failed to parse.
    IllegalPreference {
        /// The preference source.
        preference: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An exported offer misses a mandatory property.
    MissingMandatoryProperty {
        /// The service type.
        service_type: String,
        /// The missing property.
        property: String,
    },
    /// A property value does not match its declared type.
    PropertyTypeMismatch {
        /// The property name.
        property: String,
        /// The declared type.
        expected: String,
        /// The supplied value's kind.
        found: String,
    },
    /// An attempt to modify a readonly property.
    ReadonlyProperty(String),
    /// A property not declared by the offer's service type.
    UnknownProperty {
        /// The service type.
        service_type: String,
        /// The undeclared property.
        property: String,
    },
    /// The offer id is unknown.
    UnknownOffer(String),
    /// A broker-level failure (dynamic property evaluation, federation…).
    Orb(OrbError),
}

impl fmt::Display for TradingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TradingError::UnknownServiceType(t) => write!(f, "unknown service type `{t}`"),
            TradingError::DuplicateServiceType(t) => {
                write!(f, "service type `{t}` already registered")
            }
            TradingError::IllegalConstraint { constraint, reason } => {
                write!(f, "illegal constraint `{constraint}`: {reason}")
            }
            TradingError::IllegalPreference { preference, reason } => {
                write!(f, "illegal preference `{preference}`: {reason}")
            }
            TradingError::MissingMandatoryProperty {
                service_type,
                property,
            } => write!(
                f,
                "offer of type `{service_type}` misses mandatory property `{property}`"
            ),
            TradingError::PropertyTypeMismatch {
                property,
                expected,
                found,
            } => write!(f, "property `{property}` expects {expected}, got {found}"),
            TradingError::ReadonlyProperty(p) => {
                write!(f, "property `{p}` is readonly and cannot be modified")
            }
            TradingError::UnknownProperty {
                service_type,
                property,
            } => write!(
                f,
                "service type `{service_type}` does not declare property `{property}`"
            ),
            TradingError::UnknownOffer(id) => write!(f, "unknown offer `{id}`"),
            TradingError::Orb(e) => write!(f, "{e}"),
        }
    }
}

impl Error for TradingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TradingError::Orb(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OrbError> for TradingError {
    fn from(e: OrbError) -> Self {
        TradingError::Orb(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TradingError::MissingMandatoryProperty {
            service_type: "Hello".into(),
            property: "LoadAvg".into(),
        };
        assert!(e.to_string().contains("Hello"));
        assert!(e.to_string().contains("LoadAvg"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<TradingError>();
    }
}
