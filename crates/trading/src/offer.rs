//! Service offers: what servers export and importers get back.

use std::fmt;
use std::time::Duration;

use adapta_idl::Value;
use adapta_orb::ObjRef;

/// The identifier the trader hands back at export time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OfferId(pub(crate) String);

impl OfferId {
    /// Wraps a raw offer-id string (as received over the wire).
    pub fn from_string(s: impl Into<String>) -> OfferId {
        OfferId(s.into())
    }

    /// The raw string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for OfferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A property value inside an offer: stored, or evaluated on demand.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// A stored value.
    Static(Value),
    /// A *dynamic property*: a reference to an object implementing
    /// `evalDP(name) -> value`, queried at import time. This is the
    /// OMG dynamic-property mechanism the paper's monitors plug into.
    Dynamic(ObjRef),
}

impl PropValue {
    /// Encodes for the wire (`{kind, value|ref}`).
    pub fn to_value(&self) -> Value {
        match self {
            PropValue::Static(v) => {
                Value::map([("kind", Value::from("static")), ("value", v.clone())])
            }
            PropValue::Dynamic(r) => Value::map([
                ("kind", Value::from("dynamic")),
                ("ref", Value::ObjRef(r.clone())),
            ]),
        }
    }

    /// Decodes the wire form; `None` on malformed input.
    pub fn from_value(v: &Value) -> Option<PropValue> {
        match v.get("kind")?.as_str()? {
            "static" => Some(PropValue::Static(v.get("value")?.clone())),
            "dynamic" => Some(PropValue::Dynamic(v.get("ref")?.as_objref()?.clone())),
            _ => None,
        }
    }
}

impl From<Value> for PropValue {
    fn from(v: Value) -> PropValue {
        PropValue::Static(v)
    }
}

/// An export request: the offer a server registers with the trader.
///
/// ```
/// use adapta_trading::ExportRequest;
/// use adapta_idl::{ObjRefData, Value};
///
/// let req = ExportRequest::new("HelloService", ObjRefData::new("inproc://s", "h", "Hello"))
///     .with_property("Host", Value::from("node1"))
///     .with_dynamic_property("LoadAvg", ObjRefData::new("inproc://s", "mon", "Monitor"));
/// assert_eq!(req.properties.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExportRequest {
    /// The service type of the offer.
    pub service_type: String,
    /// The object that provides the service.
    pub target: ObjRef,
    /// Offer properties.
    pub properties: Vec<(String, PropValue)>,
    /// Optional liveness lease: the offer expires this long after
    /// export unless the exporter [renews](crate::Trader::renew) it.
    /// `None` means the offer lives until withdrawn.
    pub lease: Option<Duration>,
}

impl ExportRequest {
    /// Creates a request with no properties and no lease.
    pub fn new(service_type: impl Into<String>, target: ObjRef) -> Self {
        ExportRequest {
            service_type: service_type.into(),
            target,
            properties: Vec::new(),
            lease: None,
        }
    }

    /// Attaches a liveness lease of `ttl`; returns `self` for chaining.
    pub fn with_lease(mut self, ttl: Duration) -> Self {
        self.lease = Some(ttl);
        self
    }

    /// Adds a static property; returns `self` for chaining.
    pub fn with_property(mut self, name: impl Into<String>, value: Value) -> Self {
        self.properties
            .push((name.into(), PropValue::Static(value)));
        self
    }

    /// Adds a dynamic property backed by `eval_ref`; returns `self`.
    pub fn with_dynamic_property(mut self, name: impl Into<String>, eval_ref: ObjRef) -> Self {
        self.properties
            .push((name.into(), PropValue::Dynamic(eval_ref)));
        self
    }
}

/// An offer as stored by the trader.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOffer {
    /// The trader-assigned id.
    pub id: OfferId,
    /// Service type.
    pub service_type: String,
    /// The provider object.
    pub target: ObjRef,
    /// Properties (static or dynamic).
    pub properties: Vec<(String, PropValue)>,
}

/// A query result: an offer with its properties *resolved* (dynamic
/// properties evaluated) at query time.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferMatch {
    /// The matched offer's id.
    pub id: OfferId,
    /// Service type of the offer.
    pub service_type: String,
    /// The provider object.
    pub target: ObjRef,
    /// Properties as seen by the constraint/preference evaluation.
    pub properties: Vec<(String, Value)>,
    /// For each dynamic property: the object that evaluates it (lets
    /// importers subscribe to the monitor behind a property).
    pub dynamic: Vec<(String, ObjRef)>,
}

impl OfferMatch {
    /// Looks up a resolved property.
    pub fn prop(&self, name: &str) -> Option<&Value> {
        self.properties
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// The eval object behind a dynamic property, if any.
    pub fn dynamic_ref(&self, name: &str) -> Option<&ObjRef> {
        self.dynamic.iter().find(|(k, _)| k == name).map(|(_, r)| r)
    }

    /// Encodes for the wire.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("id", Value::from(self.id.as_str())),
            ("type", Value::from(self.service_type.as_str())),
            ("target", Value::ObjRef(self.target.clone())),
            ("props", Value::Map(self.properties.clone())),
            (
                "dynamic",
                Value::Map(
                    self.dynamic
                        .iter()
                        .map(|(k, r)| (k.clone(), Value::ObjRef(r.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes the wire form; `None` on malformed input.
    pub fn from_value(v: &Value) -> Option<OfferMatch> {
        let dynamic = match v.get("dynamic").and_then(Value::as_map) {
            Some(fields) => fields
                .iter()
                .filter_map(|(k, r)| Some((k.clone(), r.as_objref()?.clone())))
                .collect(),
            None => Vec::new(),
        };
        Some(OfferMatch {
            id: OfferId::from_string(v.get("id")?.as_str()?),
            service_type: v.get("type")?.as_str()?.to_owned(),
            target: v.get("target")?.as_objref()?.clone(),
            properties: v.get("props")?.as_map()?.to_vec(),
            dynamic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some_ref() -> ObjRef {
        ObjRef::new("inproc://n", "k", "T")
    }

    #[test]
    fn prop_value_wire_round_trip() {
        let s = PropValue::Static(Value::from(1.5));
        assert_eq!(PropValue::from_value(&s.to_value()), Some(s));
        let d = PropValue::Dynamic(some_ref());
        assert_eq!(PropValue::from_value(&d.to_value()), Some(d));
        assert_eq!(PropValue::from_value(&Value::Null), None);
        assert_eq!(
            PropValue::from_value(&Value::map([("kind", Value::from("weird"))])),
            None
        );
    }

    #[test]
    fn offer_match_wire_round_trip() {
        let m = OfferMatch {
            id: OfferId::from_string("offer-3"),
            service_type: "Hello".into(),
            target: some_ref(),
            properties: vec![("LoadAvg".into(), Value::from(0.5))],
            dynamic: vec![("LoadAvg".into(), some_ref())],
        };
        assert_eq!(OfferMatch::from_value(&m.to_value()), Some(m));
        assert_eq!(OfferMatch::from_value(&Value::Long(1)), None);
    }

    #[test]
    fn offer_match_prop_lookup() {
        let m = OfferMatch {
            id: OfferId::from_string("o"),
            service_type: "T".into(),
            target: some_ref(),
            properties: vec![("a".into(), Value::from(1i64))],
            dynamic: Vec::new(),
        };
        assert_eq!(m.prop("a"), Some(&Value::from(1i64)));
        assert_eq!(m.prop("b"), None);
    }
}
