//! The trader: service-type repository, offer register, importer.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adapta_idl::Value;
use adapta_orb::{InvokeOptions, ObjRef, Orb};
use adapta_telemetry::{registry, Span};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::constraint::Constraint;
use crate::error::TradingError;
use crate::link::LinkSet;
use crate::offer::{ExportRequest, OfferId, OfferMatch, PropValue, ServiceOffer};
use crate::preference::Preference;
use crate::query::Query;
use crate::service_type::{PropDef, ServiceTypeDef};
use crate::Result;

/// Resolved static+dynamic property values, plus the dynamic-property
/// eval refs (so importers can subscribe to the monitors behind them).
type ResolvedProps = (Vec<(String, Value)>, Vec<(String, ObjRef)>);

/// A liveness lease on an offer: the offer expires `ttl` after export
/// (or after the last renewal) unless the exporter renews it.
struct Lease {
    ttl: Duration,
    expires_at: Instant,
}

/// An offer as the trader tracks it: the public [`ServiceOffer`] plus
/// liveness bookkeeping (lease, quarantine flag).
struct OfferEntry {
    offer: ServiceOffer,
    lease: Option<Lease>,
    quarantined: bool,
}

impl OfferEntry {
    fn expired(&self, now: Instant) -> bool {
        self.lease.as_ref().is_some_and(|l| now >= l.expires_at)
    }

    /// True if the offer may be returned to importers.
    fn visible(&self, now: Instant) -> bool {
        !self.quarantined && !self.expired(now)
    }
}

struct TraderInner {
    orb: Orb,
    types: RwLock<HashMap<String, ServiceTypeDef>>,
    offers: RwLock<BTreeMap<u64, OfferEntry>>,
    next_offer: AtomicU64,
    links: LinkSet,
    rng: Mutex<StdRng>,
    queries: AtomicU64,
    sweeping: AtomicBool,
}

/// The trading service.
///
/// A `Trader` is a cheaply-cloneable handle; expose it to other
/// processes by activating a
/// [`TraderServant`](crate::TraderServant) on an orb.
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone)]
pub struct Trader {
    inner: Arc<TraderInner>,
}

impl std::fmt::Debug for Trader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trader")
            .field("types", &self.inner.types.read().len())
            .field("offers", &self.inner.offers.read().len())
            .finish()
    }
}

impl Trader {
    /// Creates a trader that evaluates dynamic properties and follows
    /// federation links through `orb`.
    pub fn new(orb: &Orb) -> Trader {
        Trader {
            inner: Arc::new(TraderInner {
                orb: orb.clone(),
                types: RwLock::new(HashMap::new()),
                offers: RwLock::new(BTreeMap::new()),
                next_offer: AtomicU64::new(1),
                links: LinkSet::default(),
                rng: Mutex::new(StdRng::seed_from_u64(0x7261_6465)),
                queries: AtomicU64::new(0),
                sweeping: AtomicBool::new(false),
            }),
        }
    }

    /// Reseeds the RNG behind the `random` preference (tests).
    pub fn reseed(&self, seed: u64) {
        *self.inner.rng.lock() = StdRng::seed_from_u64(seed);
    }

    /// Number of import queries served so far (experiment counter).
    pub fn query_count(&self) -> u64 {
        self.inner.queries.load(Ordering::Relaxed)
    }

    // ---- service types -------------------------------------------------

    /// Registers a service type.
    ///
    /// # Errors
    ///
    /// [`TradingError::DuplicateServiceType`] or an unknown base type.
    pub fn add_type(&self, def: ServiceTypeDef) -> Result<()> {
        let mut types = self.inner.types.write();
        if types.contains_key(&def.name) {
            return Err(TradingError::DuplicateServiceType(def.name));
        }
        if let Some(base) = &def.base {
            if !types.contains_key(base) {
                return Err(TradingError::UnknownServiceType(base.clone()));
            }
        }
        types.insert(def.name.clone(), def);
        Ok(())
    }

    /// The registered type names (sorted).
    pub fn type_names(&self) -> Vec<String> {
        let mut names: Vec<_> = self.inner.types.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Looks up a type definition.
    pub fn describe_type(&self, name: &str) -> Option<ServiceTypeDef> {
        self.inner.types.read().get(name).cloned()
    }

    /// True if `sub` equals `base` or transitively extends it.
    pub fn is_subtype(&self, sub: &str, base: &str) -> bool {
        if sub == base {
            return true;
        }
        let types = self.inner.types.read();
        let mut current = sub;
        while let Some(def) = types.get(current) {
            match &def.base {
                Some(b) if b == base => return true,
                Some(b) => current = b,
                None => return false,
            }
        }
        false
    }

    /// Finds a property definition on `service_type` or its bases.
    fn find_prop(&self, service_type: &str, prop: &str) -> Option<PropDef> {
        let types = self.inner.types.read();
        let mut current = service_type;
        loop {
            let def = types.get(current)?;
            if let Some(p) = def.property(prop) {
                return Some(p.clone());
            }
            current = def.base.as_deref()?;
        }
    }

    /// All property definitions visible on a type (own + inherited).
    fn all_props(&self, service_type: &str) -> Vec<PropDef> {
        let types = self.inner.types.read();
        let mut out = Vec::new();
        let mut current = Some(service_type.to_owned());
        while let Some(name) = current {
            let Some(def) = types.get(&name) else { break };
            out.extend(def.properties.iter().cloned());
            current = def.base.clone();
        }
        out
    }

    // ---- register (export side) -----------------------------------------

    /// Exports an offer.
    ///
    /// # Errors
    ///
    /// Unknown type, undeclared or ill-typed properties, or missing
    /// mandatory properties.
    pub fn export(&self, request: ExportRequest) -> Result<OfferId> {
        self.validate_props(&request.service_type, &request.properties, false)?;
        for def in self.all_props(&request.service_type) {
            if def.mode.is_mandatory() && !request.properties.iter().any(|(n, _)| *n == def.name) {
                return Err(TradingError::MissingMandatoryProperty {
                    service_type: request.service_type.clone(),
                    property: def.name.clone(),
                });
            }
        }
        let n = self.inner.next_offer.fetch_add(1, Ordering::Relaxed);
        let id = OfferId(format!("offer-{n}"));
        let offer = ServiceOffer {
            id: id.clone(),
            service_type: request.service_type,
            target: request.target,
            properties: request.properties,
        };
        let lease = request.lease.map(|ttl| {
            registry().counter("trading.lease.granted").incr();
            Lease {
                ttl,
                expires_at: Instant::now() + ttl,
            }
        });
        self.inner.offers.write().insert(
            n,
            OfferEntry {
                offer,
                lease,
                quarantined: false,
            },
        );
        Ok(id)
    }

    fn validate_props(
        &self,
        service_type: &str,
        props: &[(String, PropValue)],
        modifying: bool,
    ) -> Result<()> {
        if !self.inner.types.read().contains_key(service_type) {
            return Err(TradingError::UnknownServiceType(service_type.to_owned()));
        }
        for (name, value) in props {
            let def = self.find_prop(service_type, name).ok_or_else(|| {
                TradingError::UnknownProperty {
                    service_type: service_type.to_owned(),
                    property: name.clone(),
                }
            })?;
            if modifying && def.mode.is_readonly() {
                return Err(TradingError::ReadonlyProperty(name.clone()));
            }
            if let PropValue::Static(v) = value {
                if !def.type_code.accepts(v) {
                    return Err(TradingError::PropertyTypeMismatch {
                        property: name.clone(),
                        expected: def.type_code.to_string(),
                        found: v.kind().to_owned(),
                    });
                }
            }
        }
        Ok(())
    }

    fn offer_seq(id: &OfferId) -> Option<u64> {
        id.as_str().strip_prefix("offer-")?.parse().ok()
    }

    /// Withdraws an offer.
    ///
    /// # Errors
    ///
    /// [`TradingError::UnknownOffer`].
    pub fn withdraw(&self, id: &OfferId) -> Result<()> {
        let seq = Self::offer_seq(id).ok_or_else(|| TradingError::UnknownOffer(id.to_string()))?;
        self.inner
            .offers
            .write()
            .remove(&seq)
            .map(|_| ())
            .ok_or_else(|| TradingError::UnknownOffer(id.to_string()))
    }

    /// Modifies (adds or replaces) properties of an existing offer.
    ///
    /// # Errors
    ///
    /// Unknown offer, readonly or ill-typed properties.
    pub fn modify(&self, id: &OfferId, props: Vec<(String, PropValue)>) -> Result<()> {
        let seq = Self::offer_seq(id).ok_or_else(|| TradingError::UnknownOffer(id.to_string()))?;
        let mut offers = self.inner.offers.write();
        let entry = offers
            .get_mut(&seq)
            .ok_or_else(|| TradingError::UnknownOffer(id.to_string()))?;
        let service_type = entry.offer.service_type.clone();
        drop(offers);
        self.validate_props(&service_type, &props, true)?;
        let mut offers = self.inner.offers.write();
        let entry = offers
            .get_mut(&seq)
            .ok_or_else(|| TradingError::UnknownOffer(id.to_string()))?;
        for (name, value) in props {
            if let Some(slot) = entry.offer.properties.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = value;
            } else {
                entry.offer.properties.push((name, value));
            }
        }
        Ok(())
    }

    /// Renews an offer's liveness lease and lifts any liveness
    /// quarantine: with `Some(ttl)` the lease is replaced (or created)
    /// with the new TTL; with `None` the existing TTL is extended from
    /// now (a no-op for offers without a lease).
    ///
    /// # Errors
    ///
    /// [`TradingError::UnknownOffer`] — including offers whose expired
    /// lease has already been swept.
    pub fn renew(&self, id: &OfferId, ttl: Option<Duration>) -> Result<()> {
        let seq = Self::offer_seq(id).ok_or_else(|| TradingError::UnknownOffer(id.to_string()))?;
        let mut offers = self.inner.offers.write();
        let entry = offers
            .get_mut(&seq)
            .ok_or_else(|| TradingError::UnknownOffer(id.to_string()))?;
        let now = Instant::now();
        match (ttl, &mut entry.lease) {
            (Some(ttl), lease) => {
                *lease = Some(Lease {
                    ttl,
                    expires_at: now + ttl,
                });
            }
            (None, Some(lease)) => lease.expires_at = now + lease.ttl,
            (None, None) => {}
        }
        entry.quarantined = false;
        registry().counter("trading.lease.renewals").incr();
        Ok(())
    }

    /// Describes a registered offer.
    ///
    /// # Errors
    ///
    /// [`TradingError::UnknownOffer`].
    pub fn describe(&self, id: &OfferId) -> Result<ServiceOffer> {
        let seq = Self::offer_seq(id).ok_or_else(|| TradingError::UnknownOffer(id.to_string()))?;
        self.inner
            .offers
            .read()
            .get(&seq)
            .map(|e| e.offer.clone())
            .ok_or_else(|| TradingError::UnknownOffer(id.to_string()))
    }

    /// All registered offers, in registration order — including leased
    /// and quarantined ones (an administrative view; importers only see
    /// live offers).
    pub fn list_offers(&self) -> Vec<ServiceOffer> {
        self.inner
            .offers
            .read()
            .values()
            .map(|e| e.offer.clone())
            .collect()
    }

    /// Offers currently quarantined by the liveness sweeper.
    pub fn quarantined_offers(&self) -> Vec<OfferId> {
        self.inner
            .offers
            .read()
            .values()
            .filter(|e| e.quarantined)
            .map(|e| e.offer.id.clone())
            .collect()
    }

    // ---- liveness ----------------------------------------------------------

    /// Starts the background liveness sweeper: every `interval` it
    /// drops offers whose lease expired and pings each remaining
    /// exporter (`_non_existent` with `ping_deadline`), quarantining
    /// non-responders and reviving quarantined offers that answer
    /// again. Returns `false` if a sweeper is already running.
    ///
    /// The thread holds only a weak handle and exits shortly after the
    /// last `Trader` clone is dropped.
    pub fn start_liveness_sweeper(&self, interval: Duration, ping_deadline: Duration) -> bool {
        if self.inner.sweeping.swap(true, Ordering::SeqCst) {
            return false;
        }
        let weak = Arc::downgrade(&self.inner);
        std::thread::Builder::new()
            .name("trader-liveness".into())
            .spawn(move || loop {
                // Sleep in short steps so the thread notices the trader
                // going away without waiting out a long interval.
                let mut left = interval;
                while !left.is_zero() {
                    let step = left.min(Duration::from_millis(10));
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                    if weak.strong_count() == 0 {
                        return;
                    }
                }
                let Some(inner) = weak.upgrade() else { return };
                Trader { inner }.sweep_liveness(ping_deadline);
            })
            .expect("spawn trader liveness sweeper");
        true
    }

    /// Runs one liveness pass synchronously (what the background
    /// sweeper does each interval); deterministic hook for tests and
    /// scripts. Returns the number of offers whose state changed
    /// (expired-and-dropped, quarantined, or revived).
    pub fn sweep_liveness(&self, ping_deadline: Duration) -> usize {
        // Phase 1: drop expired leases.
        let now = Instant::now();
        let mut changed = 0usize;
        {
            let mut offers = self.inner.offers.write();
            let before = offers.len();
            offers.retain(|_, entry| !entry.expired(now));
            let expired = before - offers.len();
            if expired > 0 {
                registry()
                    .counter("trading.lease.expired")
                    .add(expired as u64);
                changed += expired;
            }
        }
        // Phase 2: ping exporters — outside the lock, so slow or hung
        // targets never stall exports and queries.
        let targets: Vec<(u64, ObjRef, bool)> = self
            .inner
            .offers
            .read()
            .iter()
            .map(|(seq, entry)| (*seq, entry.offer.target.clone(), entry.quarantined))
            .collect();
        for (seq, target, was_quarantined) in targets {
            registry().counter("trading.liveness.pings").incr();
            let alive = match self.inner.orb.invoke_ref_with(
                &target,
                "_non_existent",
                vec![],
                InvokeOptions::new().deadline(ping_deadline),
            ) {
                // `_non_existent` answers true when the key is gone.
                Ok(v) => v.as_bool() != Some(true),
                // A connectivity-class failure means the exporter is
                // unreachable; any other error still proves something
                // answered at that endpoint.
                Err(e) => !e.is_retryable(),
            };
            let mut offers = self.inner.offers.write();
            if let Some(entry) = offers.get_mut(&seq) {
                if alive && was_quarantined && entry.quarantined {
                    entry.quarantined = false;
                    registry().counter("trading.liveness.revived").incr();
                    changed += 1;
                } else if !alive && !entry.quarantined {
                    entry.quarantined = true;
                    registry().counter("trading.liveness.quarantined").incr();
                    changed += 1;
                }
            }
        }
        changed
    }

    // ---- federation ------------------------------------------------------

    /// Links another trader; queries with remaining hops are forwarded.
    pub fn add_link(&self, name: impl Into<String>, target: ObjRef) {
        self.inner.links.add(name, target);
    }

    /// Unlinks a federated trader; `true` if the link existed.
    pub fn remove_link(&self, name: &str) -> bool {
        self.inner.links.remove(name)
    }

    /// Names of federation links.
    pub fn link_names(&self) -> Vec<String> {
        self.inner.links.names()
    }

    // ---- lookup (import side) ---------------------------------------------

    /// Runs an import query: resolve properties, filter by constraint,
    /// order by preference, merge federated results, apply cardinality
    /// policies.
    ///
    /// # Errors
    ///
    /// Unknown service type or illegal constraint/preference. Dynamic
    /// properties that fail to evaluate are dropped from the offer
    /// (possibly excluding it from the match, never failing the query).
    pub fn query(&self, q: &Query) -> Result<Vec<OfferMatch>> {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        registry().counter("trading.queries").incr();
        let mut span = Span::start("trader:query");
        span.attr("service_type", &q.service_type);
        if !self.inner.types.read().contains_key(&q.service_type) {
            registry().counter("trading.query_errors").incr();
            return Err(TradingError::UnknownServiceType(q.service_type.clone()));
        }
        let constraint = Constraint::parse(&q.constraint)?;
        let preference = Preference::parse(&q.preference)?;

        let now = Instant::now();
        let candidates: Vec<ServiceOffer> = self
            .inner
            .offers
            .read()
            .values()
            .filter(|entry| entry.visible(now))
            .map(|entry| &entry.offer)
            .filter(|offer| {
                if q.policies.exact_type_match {
                    offer.service_type == q.service_type
                } else {
                    self.is_subtype(&offer.service_type, &q.service_type)
                }
            })
            .take(q.policies.search_card as usize)
            .cloned()
            .collect();
        registry()
            .counter("trading.offers_considered")
            .add(candidates.len() as u64);
        span.attr("offers_considered", &candidates.len().to_string());

        let constraint_eval = registry().histogram("trading.constraint_eval");
        let mut matches: Vec<OfferMatch> = Vec::new();
        for offer in candidates {
            let (resolved, dynamic) = self.resolve_props(&offer, q.policies.use_dynamic_properties);
            let started = std::time::Instant::now();
            let matched = constraint.matches(&resolved);
            constraint_eval.record(started.elapsed());
            if matched {
                matches.push(OfferMatch {
                    id: offer.id.clone(),
                    service_type: offer.service_type.clone(),
                    target: offer.target.clone(),
                    properties: resolved,
                    dynamic,
                });
            }
        }
        // Re-validate the local matches against the live offer set: the
        // loop above invokes dynamic-property evaluators through the
        // orb, a window in which a concurrent `withdraw` may have been
        // acknowledged — and an offer must never be returned after its
        // withdrawal acked. (Runs before federation results are merged:
        // federated ids use the same `offer-N` namespace and must not be
        // checked against the local table.)
        {
            let offers = self.inner.offers.read();
            let now = Instant::now();
            matches.retain(|m| {
                Self::offer_seq(&m.id)
                    .and_then(|seq| offers.get(&seq))
                    .is_some_and(|entry| entry.visible(now))
            });
        }
        span.attr("matches", &matches.len().to_string());

        // Federation: spend one hop per link traversal (see `link.rs`
        // for the traversal, dedup, and degradation rules).
        self.inner.links.federate(&self.inner.orb, q, &mut matches);

        let props: Vec<Vec<(String, Value)>> =
            matches.iter().map(|m| m.properties.clone()).collect();
        let mut shuffle = |order: &mut Vec<usize>| {
            order.shuffle(&mut *self.inner.rng.lock());
        };
        let order = preference.order(&props, &mut shuffle);
        let mut ordered: Vec<OfferMatch> = order.into_iter().map(|i| matches[i].clone()).collect();
        ordered.truncate(q.policies.return_card as usize);
        Ok(ordered)
    }

    /// Resolves an offer's properties, evaluating dynamic ones through
    /// the orb when allowed. Also returns the eval refs of dynamic
    /// properties so importers can subscribe to the monitors behind
    /// them.
    fn resolve_props(&self, offer: &ServiceOffer, use_dynamic: bool) -> ResolvedProps {
        let mut out = Vec::with_capacity(offer.properties.len());
        let mut dynamic = Vec::new();
        for (name, value) in &offer.properties {
            match value {
                PropValue::Static(v) => out.push((name.clone(), v.clone())),
                PropValue::Dynamic(eval_ref) => {
                    dynamic.push((name.clone(), eval_ref.clone()));
                    if !use_dynamic {
                        continue;
                    }
                    // The round trip to the evaluator rides the orb, so
                    // it emits a `client:evalDP` span nested under the
                    // trader's query (or dispatch) span automatically.
                    registry().counter("trading.dynamic_evals").incr();
                    let round_trip = registry().histogram("trading.dynamic_eval_round_trip");
                    let started = std::time::Instant::now();
                    let outcome = self.inner.orb.invoke_ref(
                        eval_ref,
                        "evalDP",
                        vec![Value::from(name.as_str())],
                    );
                    round_trip.record(started.elapsed());
                    match outcome {
                        Ok(v) => out.push((name.clone(), v)),
                        Err(_) => {
                            // OMG rule: a dynamic property that cannot be
                            // evaluated is simply absent from the offer.
                            registry().counter("trading.dynamic_eval_failures").incr();
                        }
                    }
                }
            }
        }
        (out, dynamic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_idl::TypeCode;
    use adapta_orb::ServantFn;

    use crate::service_type::PropMode;

    fn target(n: u32) -> ObjRef {
        ObjRef::new("inproc://servers", format!("svc-{n}"), "Hello")
    }

    fn trader_with_type() -> (Orb, Trader) {
        let orb = Orb::new("t-trader");
        let trader = Trader::new(&orb);
        trader
            .add_type(
                ServiceTypeDef::new("Hello")
                    .with_property(PropDef::new(
                        "LoadAvg",
                        TypeCode::Double,
                        PropMode::Mandatory,
                    ))
                    .with_property(PropDef::new("Host", TypeCode::Str, PropMode::Readonly))
                    .with_property(PropDef::new("Cost", TypeCode::Double, PropMode::Normal)),
            )
            .unwrap();
        (orb, trader)
    }

    fn export(trader: &Trader, n: u32, load: f64) -> OfferId {
        trader
            .export(
                ExportRequest::new("Hello", target(n))
                    .with_property("LoadAvg", Value::from(load))
                    .with_property("Host", Value::from(format!("host{n}"))),
            )
            .unwrap()
    }

    #[test]
    fn export_query_min_preference() {
        let (_orb, trader) = trader_with_type();
        export(&trader, 1, 30.0);
        export(&trader, 2, 10.0);
        export(&trader, 3, 20.0);
        let matches = trader
            .query(
                &Query::new("Hello")
                    .constraint("LoadAvg < 25")
                    .preference("min LoadAvg"),
            )
            .unwrap();
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].target, target(2));
        assert_eq!(matches[1].target, target(3));
    }

    #[test]
    fn export_validates_schema() {
        let (_orb, trader) = trader_with_type();
        // Unknown type.
        assert!(matches!(
            trader.export(ExportRequest::new("Nope", target(1))),
            Err(TradingError::UnknownServiceType(_))
        ));
        // Missing mandatory LoadAvg.
        assert!(matches!(
            trader.export(ExportRequest::new("Hello", target(1))),
            Err(TradingError::MissingMandatoryProperty { .. })
        ));
        // Wrong property type.
        assert!(matches!(
            trader.export(
                ExportRequest::new("Hello", target(1))
                    .with_property("LoadAvg", Value::from("high"))
            ),
            Err(TradingError::PropertyTypeMismatch { .. })
        ));
        // Undeclared property.
        assert!(matches!(
            trader.export(
                ExportRequest::new("Hello", target(1))
                    .with_property("LoadAvg", Value::from(1.0))
                    .with_property("Bogus", Value::from(1.0))
            ),
            Err(TradingError::UnknownProperty { .. })
        ));
    }

    #[test]
    fn withdraw_removes_offer() {
        let (_orb, trader) = trader_with_type();
        let id = export(&trader, 1, 5.0);
        trader.withdraw(&id).unwrap();
        assert!(trader.query(&Query::new("Hello")).unwrap().is_empty());
        assert!(matches!(
            trader.withdraw(&id),
            Err(TradingError::UnknownOffer(_))
        ));
    }

    #[test]
    fn modify_respects_readonly() {
        let (_orb, trader) = trader_with_type();
        let id = export(&trader, 1, 5.0);
        trader
            .modify(&id, vec![("LoadAvg".into(), Value::from(9.0).into())])
            .unwrap();
        assert_eq!(
            trader.query(&Query::new("Hello")).unwrap()[0].prop("LoadAvg"),
            Some(&Value::from(9.0))
        );
        assert!(matches!(
            trader.modify(&id, vec![("Host".into(), Value::from("x").into())]),
            Err(TradingError::ReadonlyProperty(_))
        ));
        // Adding a declared-but-absent property is allowed.
        trader
            .modify(&id, vec![("Cost".into(), Value::from(1.0).into())])
            .unwrap();
    }

    #[test]
    fn subtype_offers_match_base_queries() {
        let (_orb, trader) = trader_with_type();
        trader
            .add_type(ServiceTypeDef::new("FancyHello").extends("Hello"))
            .unwrap();
        trader
            .export(
                ExportRequest::new("FancyHello", target(9))
                    .with_property("LoadAvg", Value::from(1.0)),
            )
            .unwrap();
        assert_eq!(trader.query(&Query::new("Hello")).unwrap().len(), 1);
        assert_eq!(
            trader
                .query(&Query::new("Hello").exact_type(true))
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn unknown_base_type_is_rejected() {
        let (_orb, trader) = trader_with_type();
        assert!(matches!(
            trader.add_type(ServiceTypeDef::new("X").extends("Nope")),
            Err(TradingError::UnknownServiceType(_))
        ));
        assert!(matches!(
            trader.add_type(ServiceTypeDef::new("Hello")),
            Err(TradingError::DuplicateServiceType(_))
        ));
    }

    #[test]
    fn return_card_truncates() {
        let (_orb, trader) = trader_with_type();
        for i in 0..10 {
            export(&trader, i, i as f64);
        }
        let matches = trader
            .query(&Query::new("Hello").preference("min LoadAvg").return_card(3))
            .unwrap();
        assert_eq!(matches.len(), 3);
        assert_eq!(matches[0].prop("LoadAvg"), Some(&Value::from(0.0)));
    }

    #[test]
    fn dynamic_properties_are_evaluated_at_query_time() {
        let orb = Orb::new("t-trader-dyn");
        let trader = Trader::new(&orb);
        trader
            .add_type(ServiceTypeDef::new("Svc").with_property(PropDef::new(
                "Load",
                TypeCode::Double,
                PropMode::Normal,
            )))
            .unwrap();
        let load = Arc::new(Mutex::new(10.0f64));
        let load_clone = load.clone();
        let eval_ref = orb
            .activate(
                "dp",
                ServantFn::new("DynamicPropEval", move |op, _args| match op {
                    "evalDP" => Ok(Value::Double(*load_clone.lock())),
                    other => Err(adapta_orb::OrbError::unknown_operation(
                        "DynamicPropEval",
                        other,
                    )),
                }),
            )
            .unwrap();
        trader
            .export(ExportRequest::new("Svc", target(1)).with_dynamic_property("Load", eval_ref))
            .unwrap();
        let q = Query::new("Svc").constraint("Load < 50");
        assert_eq!(trader.query(&q).unwrap().len(), 1);
        *load.lock() = 90.0;
        assert_eq!(trader.query(&q).unwrap().len(), 0);
        // With dynamic evaluation disabled the property is absent and the
        // constraint fails closed.
        assert_eq!(
            trader.query(&q.clone().use_dynamic(false)).unwrap().len(),
            0
        );
    }

    #[test]
    fn dead_dynamic_property_excludes_offer_not_query() {
        let orb = Orb::new("t-trader-deaddyn");
        let trader = Trader::new(&orb);
        trader
            .add_type(ServiceTypeDef::new("Svc").with_property(PropDef::new(
                "Load",
                TypeCode::Double,
                PropMode::Normal,
            )))
            .unwrap();
        let dead = ObjRef::new("inproc://vanished-node", "dp", "DynamicPropEval");
        trader
            .export(ExportRequest::new("Svc", target(1)).with_dynamic_property("Load", dead))
            .unwrap();
        trader
            .export(ExportRequest::new("Svc", target(2)).with_property("Load", Value::from(1.0)))
            .unwrap();
        let matches = trader
            .query(&Query::new("Svc").constraint("Load < 50"))
            .unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].target, target(2));
    }

    #[test]
    fn random_preference_is_seed_deterministic() {
        let (_orb, trader) = trader_with_type();
        for i in 0..5 {
            export(&trader, i, i as f64);
        }
        trader.reseed(42);
        let a: Vec<_> = trader
            .query(&Query::new("Hello").preference("random"))
            .unwrap()
            .iter()
            .map(|m| m.id.clone())
            .collect();
        trader.reseed(42);
        let b: Vec<_> = trader
            .query(&Query::new("Hello").preference("random"))
            .unwrap()
            .iter()
            .map(|m| m.id.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn leases_expire_and_renew() {
        let (_orb, trader) = trader_with_type();
        let id = trader
            .export(
                ExportRequest::new("Hello", target(1))
                    .with_property("LoadAvg", Value::from(1.0))
                    .with_lease(Duration::from_millis(30)),
            )
            .unwrap();
        assert_eq!(trader.query(&Query::new("Hello")).unwrap().len(), 1);
        std::thread::sleep(Duration::from_millis(45));
        // An expired lease hides the offer even before a sweep runs.
        assert!(trader.query(&Query::new("Hello")).unwrap().is_empty());
        // Renewing before the sweep revives it (same TTL, new window).
        trader.renew(&id, None).unwrap();
        assert_eq!(trader.query(&Query::new("Hello")).unwrap().len(), 1);
        // Once expired *and* swept, the offer is gone for good.
        std::thread::sleep(Duration::from_millis(45));
        assert!(trader.sweep_liveness(Duration::from_millis(20)) >= 1);
        assert!(trader.list_offers().is_empty());
        assert!(matches!(
            trader.renew(&id, None),
            Err(TradingError::UnknownOffer(_))
        ));
    }

    #[test]
    fn sweeper_quarantines_dead_exporters_and_revives_returning_ones() {
        let orb = Orb::new("t-trader-liveness");
        let trader = Trader::new(&orb);
        trader.add_type(ServiceTypeDef::new("Svc")).unwrap();
        let live_ref = orb
            .activate("svc", ServantFn::new("Svc", |_, _| Ok(Value::Null)))
            .unwrap();
        let dead_ref = ObjRef::new("inproc://t-liveness-lazarus", "svc", "Svc");
        let live = trader.export(ExportRequest::new("Svc", live_ref)).unwrap();
        let dead = trader.export(ExportRequest::new("Svc", dead_ref)).unwrap();
        assert_eq!(trader.query(&Query::new("Svc")).unwrap().len(), 2);

        // The dead exporter is quarantined; the live one keeps serving.
        assert!(trader.sweep_liveness(Duration::from_millis(50)) >= 1);
        assert_eq!(trader.quarantined_offers(), vec![dead.clone()]);
        let matches = trader.query(&Query::new("Svc")).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].id, live);

        // The exporter comes back up: the next sweep revives its offer.
        let lazarus = Orb::new("t-liveness-lazarus");
        lazarus
            .activate("svc", ServantFn::new("Svc", |_, _| Ok(Value::Null)))
            .unwrap();
        assert!(trader.sweep_liveness(Duration::from_millis(50)) >= 1);
        assert!(trader.quarantined_offers().is_empty());
        assert_eq!(trader.query(&Query::new("Svc")).unwrap().len(), 2);
    }

    #[test]
    fn background_sweeper_runs_and_is_single_instance() {
        let orb = Orb::new("t-trader-bg-sweep");
        let trader = Trader::new(&orb);
        trader.add_type(ServiceTypeDef::new("Svc")).unwrap();
        trader
            .export(ExportRequest::new(
                "Svc",
                ObjRef::new("inproc://t-bg-sweep-nowhere", "svc", "Svc"),
            ))
            .unwrap();
        assert!(trader.start_liveness_sweeper(Duration::from_millis(20), Duration::from_millis(50)));
        assert!(
            !trader.start_liveness_sweeper(Duration::from_millis(20), Duration::from_millis(50))
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while trader.quarantined_offers().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "sweeper never quarantined the dead exporter"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn renew_lifts_quarantine() {
        let (_orb, trader) = trader_with_type();
        let id = export(&trader, 1, 5.0);
        // target(1) points at a node that does not exist.
        trader.sweep_liveness(Duration::from_millis(20));
        assert_eq!(trader.quarantined_offers(), vec![id.clone()]);
        trader.renew(&id, None).unwrap();
        assert!(trader.quarantined_offers().is_empty());
        assert_eq!(trader.query(&Query::new("Hello")).unwrap().len(), 1);
    }

    #[test]
    fn describe_and_list() {
        let (_orb, trader) = trader_with_type();
        let id = export(&trader, 1, 5.0);
        let offer = trader.describe(&id).unwrap();
        assert_eq!(offer.service_type, "Hello");
        assert_eq!(trader.list_offers().len(), 1);
        assert!(trader.describe(&OfferId::from_string("offer-999")).is_err());
        assert!(trader.describe(&OfferId::from_string("bogus")).is_err());
    }
}
