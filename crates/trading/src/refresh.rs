//! Refreshable import queries.
//!
//! A one-shot [`query`](crate::Trader::query) answers "who matches
//! *now*"; a [`QueryHandle`] keeps asking. Each
//! [`refresh`](QueryHandle::refresh) re-runs the same query and diffs
//! the result against the previous round, classifying every offer as
//! *added* (new since last refresh), *kept* (still matching), or
//! *removed* (withdrawn, lease-expired, quarantined, or no longer
//! matching the constraint). Long-lived importers — the balancer's
//! replica set above all — consume the delta instead of rebuilding
//! their world on every poll.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::offer::{OfferId, OfferMatch};
use crate::query::Query;
use crate::servant::TradingService;
use crate::Result;

/// Identity of a match across refresh rounds. Federated traders share
/// the `offer-N` id namespace, so identity is the id *plus* the target
/// URI — the same pair `link.rs` dedups on.
fn match_key(m: &OfferMatch) -> (OfferId, String) {
    (m.id.clone(), m.target.to_uri())
}

/// What changed between two refresh rounds.
#[derive(Debug, Default)]
pub struct QueryDelta {
    /// Offers matching now that were absent last round.
    pub added: Vec<OfferMatch>,
    /// Offers matching both rounds (current property values).
    pub kept: Vec<OfferMatch>,
    /// Offers from last round that no longer match.
    pub removed: Vec<OfferMatch>,
}

impl QueryDelta {
    /// True if nothing entered or left the match set.
    pub fn is_stable(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// All currently-matching offers (added + kept), preference order
    /// preserved.
    pub fn matches(&self) -> Vec<&OfferMatch> {
        let mut all: Vec<&OfferMatch> = Vec::with_capacity(self.added.len() + self.kept.len());
        all.extend(self.kept.iter());
        all.extend(self.added.iter());
        all
    }
}

/// A standing import query: the query plus the set of offers it matched
/// on the previous [`refresh`](QueryHandle::refresh).
pub struct QueryHandle {
    service: Arc<dyn TradingService>,
    query: Query,
    seen: Mutex<HashMap<(OfferId, String), OfferMatch>>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("service_type", &self.query.service_type)
            .field("seen", &self.seen.lock().len())
            .finish()
    }
}

impl QueryHandle {
    /// Creates a handle; no query runs until the first `refresh`.
    pub fn new(service: Arc<dyn TradingService>, query: Query) -> QueryHandle {
        QueryHandle {
            service,
            query,
            seen: Mutex::new(HashMap::new()),
        }
    }

    /// The query this handle re-runs.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Re-runs the query and returns the delta against the previous
    /// round. The first call reports every match as `added`.
    ///
    /// # Errors
    ///
    /// Whatever the underlying query returns; on error the seen set is
    /// unchanged, so the next successful refresh diffs against the last
    /// *successful* round.
    pub fn refresh(&self) -> Result<QueryDelta> {
        let current = self.service.query(&self.query)?;
        let mut seen = self.seen.lock();
        let mut previous = std::mem::take(&mut *seen);
        let mut delta = QueryDelta::default();
        for m in current {
            let key = match_key(&m);
            if previous.remove(&key).is_some() {
                delta.kept.push(m.clone());
            } else {
                delta.added.push(m.clone());
            }
            seen.insert(key, m);
        }
        delta.removed = previous.into_values().collect();
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::ExportRequest;
    use crate::service_type::{PropDef, PropMode, ServiceTypeDef};
    use crate::trader::Trader;
    use adapta_idl::{ObjRefData, TypeCode, Value};
    use adapta_orb::Orb;

    fn setup() -> (Trader, QueryHandle) {
        let orb = Orb::new("t-refresh");
        let trader = Trader::new(&orb);
        trader
            .add_type(ServiceTypeDef::new("Hello").with_property(PropDef::new(
                "LoadAvg",
                TypeCode::Double,
                PropMode::Mandatory,
            )))
            .unwrap();
        let handle = QueryHandle::new(
            Arc::new(trader.clone()),
            Query::new("Hello").preference("min LoadAvg"),
        );
        (trader, handle)
    }

    fn export(trader: &Trader, name: &str, load: f64) -> OfferId {
        trader
            .export(
                ExportRequest::new("Hello", ObjRefData::new("inproc://h", name, "Hello"))
                    .with_property("LoadAvg", Value::from(load)),
            )
            .unwrap()
    }

    #[test]
    fn first_refresh_reports_everything_added() {
        let (trader, handle) = setup();
        export(&trader, "a", 1.0);
        export(&trader, "b", 2.0);
        let delta = handle.refresh().unwrap();
        assert_eq!(delta.added.len(), 2);
        assert!(delta.kept.is_empty());
        assert!(delta.removed.is_empty());
        assert!(!delta.is_stable());
    }

    #[test]
    fn steady_state_is_stable() {
        let (trader, handle) = setup();
        export(&trader, "a", 1.0);
        handle.refresh().unwrap();
        let delta = handle.refresh().unwrap();
        assert!(delta.is_stable());
        assert_eq!(delta.kept.len(), 1);
        assert_eq!(delta.matches().len(), 1);
    }

    #[test]
    fn exports_and_withdrawals_show_up_as_deltas() {
        let (trader, handle) = setup();
        let a = export(&trader, "a", 1.0);
        handle.refresh().unwrap();

        export(&trader, "b", 2.0);
        let delta = handle.refresh().unwrap();
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.kept.len(), 1);

        trader.withdraw(&a).unwrap();
        let delta = handle.refresh().unwrap();
        assert!(delta.added.is_empty());
        assert_eq!(delta.kept.len(), 1);
        assert_eq!(delta.removed.len(), 1);
        assert_eq!(delta.removed[0].id, a);
    }

    #[test]
    fn failed_refresh_leaves_the_seen_set_intact() {
        let (trader, _) = setup();
        export(&trader, "a", 1.0);
        // A handle over a bogus service type errors without clearing
        // what a later successful refresh should diff against.
        let handle = QueryHandle::new(Arc::new(trader.clone()), Query::new("Nope"));
        assert!(handle.refresh().is_err());
        assert!(handle.refresh().is_err());
    }
}
