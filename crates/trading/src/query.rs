//! Import queries and policies.

use adapta_idl::Value;

/// Import policies bounding a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policies {
    /// Maximum offers considered (constraint evaluations).
    pub search_card: u32,
    /// Maximum matches returned.
    pub return_card: u32,
    /// When true, subtype offers are not returned.
    pub exact_type_match: bool,
    /// When false, dynamic properties are left unresolved (offers whose
    /// constraint needs them will not match).
    pub use_dynamic_properties: bool,
    /// How many federation links a query may still traverse.
    pub hop_count: u32,
}

impl Default for Policies {
    fn default() -> Self {
        Policies {
            search_card: 1000,
            return_card: 100,
            exact_type_match: false,
            use_dynamic_properties: true,
            hop_count: 1,
        }
    }
}

impl Policies {
    /// Encodes for the wire.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("search_card", Value::from(self.search_card)),
            ("return_card", Value::from(self.return_card)),
            ("exact_type_match", Value::from(self.exact_type_match)),
            (
                "use_dynamic_properties",
                Value::from(self.use_dynamic_properties),
            ),
            ("hop_count", Value::from(self.hop_count)),
        ])
    }

    /// Decodes the wire form, falling back to defaults per field.
    pub fn from_value(v: &Value) -> Policies {
        let d = Policies::default();
        let get_u32 = |name: &str, dft: u32| {
            v.get(name)
                .and_then(Value::as_long)
                .map(|n| n.clamp(0, u32::MAX as i64) as u32)
                .unwrap_or(dft)
        };
        let get_bool = |name: &str, dft: bool| v.get(name).and_then(Value::as_bool).unwrap_or(dft);
        Policies {
            search_card: get_u32("search_card", d.search_card),
            return_card: get_u32("return_card", d.return_card),
            exact_type_match: get_bool("exact_type_match", d.exact_type_match),
            use_dynamic_properties: get_bool("use_dynamic_properties", d.use_dynamic_properties),
            hop_count: get_u32("hop_count", d.hop_count),
        }
    }
}

/// An import query.
///
/// ```
/// use adapta_trading::Query;
///
/// let q = Query::new("HelloService")
///     .constraint("LoadAvg < 50")
///     .preference("min LoadAvg")
///     .return_card(3);
/// assert_eq!(q.policies.return_card, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The service type looked for.
    pub service_type: String,
    /// Constraint source (empty matches everything).
    pub constraint: String,
    /// Preference source (empty means `first`).
    pub preference: String,
    /// Import policies.
    pub policies: Policies,
}

impl Query {
    /// Creates a match-everything query for a service type.
    pub fn new(service_type: impl Into<String>) -> Self {
        Query {
            service_type: service_type.into(),
            constraint: String::new(),
            preference: String::new(),
            policies: Policies::default(),
        }
    }

    /// Sets the constraint; returns `self` for chaining.
    pub fn constraint(mut self, c: impl Into<String>) -> Self {
        self.constraint = c.into();
        self
    }

    /// Sets the preference; returns `self` for chaining.
    pub fn preference(mut self, p: impl Into<String>) -> Self {
        self.preference = p.into();
        self
    }

    /// Caps the number of returned matches.
    pub fn return_card(mut self, n: u32) -> Self {
        self.policies.return_card = n;
        self
    }

    /// Caps the number of offers considered.
    pub fn search_card(mut self, n: u32) -> Self {
        self.policies.search_card = n;
        self
    }

    /// Requires exact service-type equality (no subtypes).
    pub fn exact_type(mut self, on: bool) -> Self {
        self.policies.exact_type_match = on;
        self
    }

    /// Enables/disables dynamic-property evaluation.
    pub fn use_dynamic(mut self, on: bool) -> Self {
        self.policies.use_dynamic_properties = on;
        self
    }

    /// Sets the federation hop budget.
    pub fn hops(mut self, n: u32) -> Self {
        self.policies.hop_count = n;
        self
    }

    /// Encodes for the wire.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("type", Value::from(self.service_type.as_str())),
            ("constraint", Value::from(self.constraint.as_str())),
            ("preference", Value::from(self.preference.as_str())),
            ("policies", self.policies.to_value()),
        ])
    }

    /// Decodes the wire form; `None` on malformed input.
    pub fn from_value(v: &Value) -> Option<Query> {
        Some(Query {
            service_type: v.get("type")?.as_str()?.to_owned(),
            constraint: v.get("constraint")?.as_str()?.to_owned(),
            preference: v.get("preference")?.as_str()?.to_owned(),
            policies: Policies::from_value(v.get("policies").unwrap_or(&Value::Null)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let q = Query::new("T")
            .constraint("A < 1")
            .preference("min A")
            .return_card(2)
            .exact_type(true)
            .use_dynamic(false)
            .hops(0);
        assert_eq!(q.constraint, "A < 1");
        assert!(q.policies.exact_type_match);
        assert!(!q.policies.use_dynamic_properties);
        assert_eq!(q.policies.hop_count, 0);
    }

    #[test]
    fn wire_round_trip() {
        let q = Query::new("T").constraint("A < 1").preference("max A");
        assert_eq!(Query::from_value(&q.to_value()), Some(q));
    }

    #[test]
    fn policies_decode_with_defaults() {
        let p = Policies::from_value(&Value::map([("return_card", Value::from(7i64))]));
        assert_eq!(p.return_card, 7);
        assert_eq!(p.search_card, Policies::default().search_card);
        let p = Policies::from_value(&Value::Null);
        assert_eq!(p, Policies::default());
    }
}
