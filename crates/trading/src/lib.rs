//! A trading object service — the OMG Trading Service analogue the
//! paper builds its dynamic component selection on.
//!
//! Servers *export* [`ServiceOffer`]s: an object reference plus a set of
//! nonfunctional properties, described by a [`ServiceTypeDef`]. Clients
//! *import*: they [`query`](Trader::query) with a **constraint** over
//! those properties (e.g. `LoadAvg < 50 and LoadAvgIncreasing == no`), a
//! **preference** ordering the matches (`min LoadAvg`), and import
//! **policies** (cardinality caps, federation hop count, whether to
//! evaluate dynamic properties).
//!
//! The feature doing the heavy lifting for auto-adaptation is the
//! **dynamic property** ([`PropValue::Dynamic`]): instead of a stored
//! value, an offer carries a reference to an object that is invoked at
//! query time (`evalDP`) for the *current* value — in this workspace,
//! usually a monitor from `adapta-monitor`.
//!
//! ```
//! use adapta_trading::{Trader, ServiceTypeDef, PropDef, PropMode, ExportRequest, Query};
//! use adapta_idl::{TypeCode, Value, ObjRefData};
//! use adapta_orb::Orb;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let orb = Orb::new("trader-node");
//! let trader = Trader::new(&orb);
//! trader.add_type(
//!     ServiceTypeDef::new("HelloService")
//!         .with_property(PropDef::new("LoadAvg", TypeCode::Double, PropMode::Mandatory))
//! )?;
//! let offer_ref = ObjRefData::new("inproc://server", "hello", "HelloService");
//! trader.export(ExportRequest::new("HelloService", offer_ref)
//!     .with_property("LoadAvg", Value::from(12.5)))?;
//!
//! let matches = trader.query(&Query::new("HelloService")
//!     .constraint("LoadAvg < 50")
//!     .preference("min LoadAvg"))?;
//! assert_eq!(matches.len(), 1);
//! # Ok(())
//! # }
//! ```

mod constraint;
mod error;
mod link;
mod offer;
mod preference;
mod query;
mod refresh;
mod servant;
mod service_type;
mod trader;

pub use constraint::{Constraint, PropLookup};
pub use error::TradingError;
pub use link::Link;
pub use offer::{ExportRequest, OfferId, OfferMatch, PropValue, ServiceOffer};
pub use preference::Preference;
pub use query::{Policies, Query};
pub use refresh::{QueryDelta, QueryHandle};
pub use servant::{RemoteTrader, TraderServant, TradingService};
pub use service_type::{PropDef, PropMode, ServiceTypeDef};
pub use trader::Trader;

/// Result alias for trading operations.
pub type Result<T> = std::result::Result<T, TradingError>;
