//! The trader constraint language.
//!
//! A subset of the OMG Trading Service constraint language: boolean
//! connectives (`and`, `or`, `not`), comparisons (`== != < <= > >=`),
//! substring match (`~`), existence (`exist Prop`), arithmetic
//! (`+ - * /`), numeric and string literals, and property names.
//!
//! Two deliberate accommodations to the paper's figures:
//!
//! * a bare identifier that does not name a property evaluates to the
//!   *string of its own name* — the paper writes
//!   `LoadAvgIncreasing == no` (unquoted `no`);
//! * evaluation failure (missing property, type clash) makes the offer
//!   **not match**, per the OMG rule, rather than failing the query.

use std::collections::HashMap;
use std::fmt;

use adapta_idl::Value;

use crate::error::TradingError;
use crate::Result;

/// Property resolution during constraint/preference evaluation.
pub trait PropLookup {
    /// The value of `name`, or `None` when the offer lacks it.
    fn prop(&self, name: &str) -> Option<Value>;
}

impl PropLookup for HashMap<String, Value> {
    fn prop(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

impl PropLookup for Vec<(String, Value)> {
    fn prop(&self, name: &str) -> Option<Value> {
        self.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
    }
}

/// A value produced during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CVal {
    /// Boolean.
    B(bool),
    /// Number.
    N(f64),
    /// String.
    S(String),
}

/// Evaluation failure: per OMG rules this silently excludes the offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EvalFail;

impl CVal {
    fn from_value(v: &Value) -> std::result::Result<CVal, EvalFail> {
        match v {
            Value::Bool(b) => Ok(CVal::B(*b)),
            Value::Long(n) => Ok(CVal::N(*n as f64)),
            Value::Double(d) => Ok(CVal::N(*d)),
            Value::Str(s) => Ok(CVal::S(s.clone())),
            _ => Err(EvalFail),
        }
    }

    fn as_bool(&self) -> std::result::Result<bool, EvalFail> {
        match self {
            CVal::B(b) => Ok(*b),
            _ => Err(EvalFail),
        }
    }

    fn as_num(&self) -> std::result::Result<f64, EvalFail> {
        match self {
            CVal::N(n) => Ok(*n),
            _ => Err(EvalFail),
        }
    }
}

// ---- AST --------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Expr {
    Num(f64),
    Str(String),
    Bool(bool),
    Prop(String),
    Exist(String),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Substr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl Expr {
    pub(crate) fn eval(&self, props: &dyn PropLookup) -> std::result::Result<CVal, EvalFail> {
        match self {
            Expr::Num(n) => Ok(CVal::N(*n)),
            Expr::Str(s) => Ok(CVal::S(s.clone())),
            Expr::Bool(b) => Ok(CVal::B(*b)),
            Expr::Prop(name) => match props.prop(name) {
                Some(v) => CVal::from_value(&v),
                // Paper-compatible fallback: unknown identifiers are
                // string literals (`LoadAvgIncreasing == no`).
                None => Ok(CVal::S(name.clone())),
            },
            Expr::Exist(name) => Ok(CVal::B(props.prop(name).is_some())),
            Expr::Not(e) => Ok(CVal::B(!e.eval(props)?.as_bool()?)),
            Expr::And(a, b) => {
                if !a.eval(props)?.as_bool()? {
                    return Ok(CVal::B(false));
                }
                Ok(CVal::B(b.eval(props)?.as_bool()?))
            }
            Expr::Or(a, b) => {
                if a.eval(props)?.as_bool()? {
                    return Ok(CVal::B(true));
                }
                Ok(CVal::B(b.eval(props)?.as_bool()?))
            }
            Expr::Cmp(op, a, b) => {
                let a = a.eval(props)?;
                let b = b.eval(props)?;
                let out = match (op, &a, &b) {
                    (CmpOp::Substr, CVal::S(x), CVal::S(y)) => x.contains(y.as_str()),
                    (CmpOp::Substr, _, _) => return Err(EvalFail),
                    (CmpOp::Eq, _, _) => cval_eq(&a, &b)?,
                    (CmpOp::Ne, _, _) => !cval_eq(&a, &b)?,
                    (op, CVal::N(x), CVal::N(y)) => match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                        _ => unreachable!(),
                    },
                    (op, CVal::S(x), CVal::S(y)) => match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                        _ => unreachable!(),
                    },
                    _ => return Err(EvalFail),
                };
                Ok(CVal::B(out))
            }
            Expr::Arith(op, a, b) => {
                let a = a.eval(props)?.as_num()?;
                let b = b.eval(props)?.as_num()?;
                Ok(CVal::N(match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                }))
            }
            Expr::Neg(e) => Ok(CVal::N(-e.eval(props)?.as_num()?)),
        }
    }
}

fn cval_eq(a: &CVal, b: &CVal) -> std::result::Result<bool, EvalFail> {
    match (a, b) {
        (CVal::N(x), CVal::N(y)) => Ok(x == y),
        (CVal::S(x), CVal::S(y)) => Ok(x == y),
        (CVal::B(x), CVal::B(y)) => Ok(x == y),
        _ => Err(EvalFail),
    }
}

// ---- lexer/parser -------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    Op(&'static str),
    LParen,
    RParen,
}

fn lex(src: &str) -> std::result::Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] as char != quote {
                    j += 1;
                }
                if j >= b.len() {
                    return Err("unterminated string literal".into());
                }
                out.push(Tok::Str(src[start..j].to_owned()));
                i = j + 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && i > start
                            && (b[i - 1] == b'e' || b[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text
                    .parse::<f64>()
                    .map_err(|_| format!("bad number `{text}`"))?;
                out.push(Tok::Num(n));
            }
            '=' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Op("=="));
                i += 2;
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Op("!="));
                i += 2;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op("<="));
                    i += 2;
                } else {
                    out.push(Tok::Op("<"));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op(">="));
                    i += 2;
                } else {
                    out.push(Tok::Op(">"));
                    i += 1;
                }
            }
            '~' => {
                out.push(Tok::Op("~"));
                i += 1;
            }
            '+' => {
                out.push(Tok::Op("+"));
                i += 1;
            }
            '-' => {
                out.push(Tok::Op("-"));
                i += 1;
            }
            '*' => {
                out.push(Tok::Op("*"));
                i += 1;
            }
            '/' => {
                out.push(Tok::Op("/"));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_owned()));
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if let Some(Tok::Op(s)) = self.peek() {
            if *s == op {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if let Some(Tok::Ident(name)) = self.peek() {
            if name == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn parse_or(&mut self) -> std::result::Result<Expr, String> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword("or") {
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> std::result::Result<Expr, String> {
        let mut lhs = self.parse_not()?;
        while self.eat_keyword("and") {
            let rhs = self.parse_not()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> std::result::Result<Expr, String> {
        if self.eat_keyword("not") {
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> std::result::Result<Expr, String> {
        let lhs = self.parse_sum()?;
        let op = match self.peek() {
            Some(Tok::Op("==")) => Some(CmpOp::Eq),
            Some(Tok::Op("!=")) => Some(CmpOp::Ne),
            Some(Tok::Op("<")) => Some(CmpOp::Lt),
            Some(Tok::Op("<=")) => Some(CmpOp::Le),
            Some(Tok::Op(">")) => Some(CmpOp::Gt),
            Some(Tok::Op(">=")) => Some(CmpOp::Ge),
            Some(Tok::Op("~")) => Some(CmpOp::Substr),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_sum()?;
            return Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_sum(&mut self) -> std::result::Result<Expr, String> {
        let mut lhs = self.parse_term()?;
        loop {
            if self.eat_op("+") {
                lhs = Expr::Arith(ArithOp::Add, Box::new(lhs), Box::new(self.parse_term()?));
            } else if self.eat_op("-") {
                lhs = Expr::Arith(ArithOp::Sub, Box::new(lhs), Box::new(self.parse_term()?));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> std::result::Result<Expr, String> {
        let mut lhs = self.parse_factor()?;
        loop {
            if self.eat_op("*") {
                lhs = Expr::Arith(ArithOp::Mul, Box::new(lhs), Box::new(self.parse_factor()?));
            } else if self.eat_op("/") {
                lhs = Expr::Arith(ArithOp::Div, Box::new(lhs), Box::new(self.parse_factor()?));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> std::result::Result<Expr, String> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Tok::Op("-")) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.parse_factor()?)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if self.peek() != Some(&Tok::RParen) {
                    return Err("expected `)`".into());
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "TRUE" | "true" => Ok(Expr::Bool(true)),
                    "FALSE" | "false" => Ok(Expr::Bool(false)),
                    "exist" => match self.peek().cloned() {
                        Some(Tok::Ident(prop)) => {
                            self.pos += 1;
                            Ok(Expr::Exist(prop))
                        }
                        _ => Err("`exist` must be followed by a property name".into()),
                    },
                    _ => Ok(Expr::Prop(name)),
                }
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }
}

pub(crate) fn parse_expr(src: &str) -> std::result::Result<Expr, String> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return Err("empty expression".into());
    }
    let mut p = Parser { toks, pos: 0 };
    let expr = p.parse_or()?;
    if p.pos < p.toks.len() {
        return Err(format!("trailing tokens after expression: {:?}", p.peek()));
    }
    Ok(expr)
}

/// A compiled constraint.
///
/// ```
/// use adapta_trading::Constraint;
/// use adapta_idl::Value;
/// use std::collections::HashMap;
///
/// let c = Constraint::parse("LoadAvg < 50 and LoadAvgIncreasing == no").unwrap();
/// let mut props = HashMap::new();
/// props.insert("LoadAvg".to_owned(), Value::from(10.0));
/// props.insert("LoadAvgIncreasing".to_owned(), Value::from("no"));
/// assert!(c.matches(&props));
/// props.insert("LoadAvgIncreasing".to_owned(), Value::from("yes"));
/// assert!(!c.matches(&props));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    source: String,
    expr: Option<Expr>,
}

impl Constraint {
    /// The constraint matching every offer (empty source).
    pub fn always() -> Constraint {
        Constraint {
            source: String::new(),
            expr: None,
        }
    }

    /// Parses a constraint. Empty/blank source matches everything.
    ///
    /// # Errors
    ///
    /// Returns [`TradingError::IllegalConstraint`] with the reason.
    pub fn parse(source: &str) -> Result<Constraint> {
        if source.trim().is_empty() {
            return Ok(Constraint::always());
        }
        let expr = parse_expr(source).map_err(|reason| TradingError::IllegalConstraint {
            constraint: source.to_owned(),
            reason,
        })?;
        Ok(Constraint {
            source: source.to_owned(),
            expr: Some(expr),
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether an offer with these properties matches. Evaluation
    /// failures (missing property, type clash, non-boolean result) make
    /// the offer not match.
    pub fn matches(&self, props: &dyn PropLookup) -> bool {
        match &self.expr {
            None => true,
            Some(expr) => matches!(expr.eval(props), Ok(CVal::B(true))),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.source.is_empty() {
            write!(f, "TRUE")
        } else {
            write!(f, "{}", self.source)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    fn check(src: &str, pairs: &[(&str, Value)]) -> bool {
        Constraint::parse(src).unwrap().matches(&props(pairs))
    }

    #[test]
    fn comparisons() {
        let p = [("Load", Value::from(10.0))];
        assert!(check("Load < 50", &p));
        assert!(check("Load <= 10", &p));
        assert!(check("Load == 10", &p));
        assert!(check("Load != 9", &p));
        assert!(!check("Load > 10", &p));
        assert!(check("Load >= 10", &p));
    }

    #[test]
    fn long_and_double_properties_compare() {
        assert!(check("N < 5", &[("N", Value::from(3i64))]));
        assert!(check("N == 3", &[("N", Value::from(3.0))]));
    }

    #[test]
    fn boolean_connectives_and_precedence() {
        let p = [("A", Value::from(1.0)), ("B", Value::from(2.0))];
        assert!(check("A == 1 and B == 2", &p));
        assert!(check("A == 9 or B == 2", &p));
        // `and` binds tighter than `or`.
        assert!(check("A == 9 and B == 9 or B == 2", &p));
        assert!(!check("A == 9 and (B == 9 or B == 2)", &p));
        assert!(check("not A == 9", &p));
        assert!(check("not (A == 9 and B == 2)", &p));
    }

    #[test]
    fn arithmetic_in_constraints() {
        let p = [("L1", Value::from(3.0)), ("L5", Value::from(2.0))];
        assert!(check("L1 > L5", &p));
        assert!(check("L1 + L5 == 5", &p));
        assert!(check("L1 * 2 - 1 == L5 + 3", &p));
        assert!(check("-L1 < 0", &p));
        assert!(check("L1 / L5 > 1.4", &p));
    }

    #[test]
    fn string_comparison_and_substring() {
        let p = [("Host", Value::from("rio-node-7"))];
        assert!(check("Host == 'rio-node-7'", &p));
        assert!(check("Host ~ 'node'", &p));
        assert!(!check("Host ~ 'xyz'", &p));
        assert!(check("Host > 'a'", &p));
    }

    #[test]
    fn paper_unquoted_identifier_fallback() {
        // Figure 7: "LoadAvg < 50 and LoadAvgIncreasing == no "
        let c = Constraint::parse("LoadAvg < 50 and LoadAvgIncreasing == no ").unwrap();
        assert!(c.matches(&props(&[
            ("LoadAvg", Value::from(12.0)),
            ("LoadAvgIncreasing", Value::from("no")),
        ])));
        assert!(!c.matches(&props(&[
            ("LoadAvg", Value::from(12.0)),
            ("LoadAvgIncreasing", Value::from("yes")),
        ])));
    }

    #[test]
    fn exist_checks_presence() {
        assert!(check("exist Load", &[("Load", Value::from(1.0))]));
        assert!(!check("exist Load", &[]));
        assert!(check("not exist Load", &[]));
    }

    #[test]
    fn missing_property_fails_closed() {
        // `Load < 50` with no Load property: Load falls back to the
        // string "Load", string < number fails → no match.
        assert!(!check("Load < 50", &[]));
    }

    #[test]
    fn type_clash_fails_closed() {
        assert!(!check("Load < 50", &[("Load", Value::from("high"))]));
        assert!(!check("Load and TRUE", &[("Load", Value::from(1.0))]));
    }

    #[test]
    fn true_false_literals() {
        assert!(check("TRUE", &[]));
        assert!(!check("FALSE", &[]));
        assert!(check("true or FALSE", &[]));
    }

    #[test]
    fn empty_constraint_matches_everything() {
        assert!(check("", &[]));
        assert!(check("   ", &[]));
        assert_eq!(Constraint::always().to_string(), "TRUE");
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "Load <",
            "== 3",
            "(A == 1",
            "Load < 'x",
            "exist",
            "A @ B",
            "1 2",
        ] {
            let err = Constraint::parse(bad).unwrap_err();
            assert!(
                matches!(err, TradingError::IllegalConstraint { .. }),
                "{bad} should be illegal"
            );
        }
    }

    #[test]
    fn eq_on_booleans() {
        assert!(check("Up == TRUE", &[("Up", Value::from(true))]));
        assert!(!check("Up == TRUE", &[("Up", Value::from(false))]));
    }

    #[test]
    fn dotted_property_names() {
        assert!(check(
            "net.bandwidth >= 100",
            &[("net.bandwidth", Value::from(150.0))]
        ));
    }
}
