//! Import preferences: how matched offers are ordered.
//!
//! The OMG forms: `max <expr>`, `min <expr>`, `with <expr>` (offers
//! satisfying the expression first), `random`, and `first` (offer
//! registration order). The default is `first`.

use adapta_idl::Value;

use crate::constraint::{parse_expr, CVal, Expr, PropLookup};
use crate::error::TradingError;
use crate::Result;

/// A compiled preference.
///
/// ```
/// use adapta_trading::Preference;
///
/// let p = Preference::parse("min LoadAvg").unwrap();
/// assert_eq!(p.to_string(), "min LoadAvg");
/// assert_eq!(Preference::parse("").unwrap(), Preference::First);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Preference {
    /// Registration order (the default).
    #[default]
    First,
    /// Uniformly random order.
    Random,
    /// Offers maximising the expression first.
    Max(PrefExpr),
    /// Offers minimising the expression first.
    Min(PrefExpr),
    /// Offers satisfying the (boolean) expression first.
    With(PrefExpr),
}

/// A preference scoring expression (wrapped to keep the AST private).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefExpr {
    source: String,
    expr: Expr,
}

impl PrefExpr {
    /// The numeric score of an offer, `None` when evaluation fails
    /// (failed offers sort last).
    pub fn score(&self, props: &dyn PropLookup) -> Option<f64> {
        match self.expr.eval(props) {
            Ok(CVal::N(n)) if !n.is_nan() => Some(n),
            _ => None,
        }
    }

    /// The boolean value of the expression (for `with`), `None` on
    /// evaluation failure.
    pub fn holds(&self, props: &dyn PropLookup) -> Option<bool> {
        match self.expr.eval(props) {
            Ok(CVal::B(b)) => Some(b),
            _ => None,
        }
    }
}

impl Preference {
    /// Parses a preference string. Empty/blank means [`Preference::First`].
    ///
    /// # Errors
    ///
    /// Returns [`TradingError::IllegalPreference`].
    pub fn parse(source: &str) -> Result<Preference> {
        let trimmed = source.trim();
        if trimmed.is_empty() || trimmed == "first" {
            return Ok(Preference::First);
        }
        if trimmed == "random" {
            return Ok(Preference::Random);
        }
        let illegal = |reason: String| TradingError::IllegalPreference {
            preference: source.to_owned(),
            reason,
        };
        let (kind, rest) = trimmed
            .split_once(char::is_whitespace)
            .ok_or_else(|| illegal("expected `max|min|with <expr>`, `random` or `first`".into()))?;
        let expr = parse_expr(rest).map_err(illegal)?;
        let pref_expr = PrefExpr {
            source: rest.trim().to_owned(),
            expr,
        };
        match kind {
            "max" => Ok(Preference::Max(pref_expr)),
            "min" => Ok(Preference::Min(pref_expr)),
            "with" => Ok(Preference::With(pref_expr)),
            other => Err(illegal(format!("unknown preference kind `{other}`"))),
        }
    }

    /// Orders matched offers. `indexed_props[i]` are the resolved
    /// properties of the offer at position `i` (registration order);
    /// `shuffle` supplies randomness for [`Preference::Random`].
    ///
    /// Returns the positions in preferred-first order. Offers whose
    /// preference expression fails to evaluate sort after those that
    /// succeed, per the OMG rules.
    pub fn order(
        &self,
        indexed_props: &[Vec<(String, Value)>],
        shuffle: &mut dyn FnMut(&mut Vec<usize>),
    ) -> Vec<usize> {
        let mut order: Vec<usize> = (0..indexed_props.len()).collect();
        match self {
            Preference::First => {}
            Preference::Random => shuffle(&mut order),
            Preference::Max(e) => {
                order.sort_by(|&a, &b| rank_score(e, indexed_props, b, a));
            }
            Preference::Min(e) => {
                order.sort_by(|&a, &b| rank_score(e, indexed_props, a, b));
            }
            Preference::With(e) => {
                order.sort_by_key(|&i| match e.holds(&indexed_props[i]) {
                    Some(true) => 0u8,
                    Some(false) => 1,
                    None => 2,
                });
            }
        }
        order
    }
}

/// Compares offers `a` and `b` by score, failures last; stable on ties.
fn rank_score(
    e: &PrefExpr,
    props: &[Vec<(String, Value)>],
    a: usize,
    b: usize,
) -> std::cmp::Ordering {
    match (e.score(&props[a]), e.score(&props[b])) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    }
}

impl std::fmt::Display for Preference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Preference::First => write!(f, "first"),
            Preference::Random => write!(f, "random"),
            Preference::Max(e) => write!(f, "max {}", e.source),
            Preference::Min(e) => write!(f, "min {}", e.source),
            Preference::With(e) => write!(f, "with {}", e.source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offers(loads: &[Option<f64>]) -> Vec<Vec<(String, Value)>> {
        loads
            .iter()
            .map(|load| match load {
                Some(l) => vec![("LoadAvg".to_owned(), Value::from(*l))],
                None => vec![],
            })
            .collect()
    }

    fn no_shuffle(_: &mut Vec<usize>) {}

    #[test]
    fn min_orders_ascending() {
        let p = Preference::parse("min LoadAvg").unwrap();
        let props = offers(&[Some(5.0), Some(1.0), Some(3.0)]);
        assert_eq!(p.order(&props, &mut no_shuffle), vec![1, 2, 0]);
    }

    #[test]
    fn max_orders_descending() {
        let p = Preference::parse("max LoadAvg").unwrap();
        let props = offers(&[Some(5.0), Some(1.0), Some(3.0)]);
        assert_eq!(p.order(&props, &mut no_shuffle), vec![0, 2, 1]);
    }

    #[test]
    fn failed_evaluations_sort_last() {
        let p = Preference::parse("min LoadAvg").unwrap();
        let props = offers(&[None, Some(2.0), Some(1.0)]);
        assert_eq!(p.order(&props, &mut no_shuffle), vec![2, 1, 0]);
    }

    #[test]
    fn with_puts_satisfying_offers_first() {
        let p = Preference::parse("with LoadAvg < 3").unwrap();
        let props = offers(&[Some(5.0), Some(1.0), Some(2.0)]);
        let order = p.order(&props, &mut no_shuffle);
        assert_eq!(&order[..2], &[1, 2]);
        assert_eq!(order[2], 0);
    }

    #[test]
    fn first_keeps_registration_order() {
        let p = Preference::parse("first").unwrap();
        let props = offers(&[Some(5.0), Some(1.0)]);
        assert_eq!(p.order(&props, &mut no_shuffle), vec![0, 1]);
        assert_eq!(Preference::parse("  ").unwrap(), Preference::First);
    }

    #[test]
    fn random_uses_the_shuffle() {
        let p = Preference::parse("random").unwrap();
        let props = offers(&[Some(1.0), Some(2.0), Some(3.0)]);
        let mut called = false;
        let mut shuffle = |v: &mut Vec<usize>| {
            called = true;
            v.reverse();
        };
        assert_eq!(p.order(&props, &mut shuffle), vec![2, 1, 0]);
        assert!(called);
    }

    #[test]
    fn preference_can_use_arithmetic() {
        let p = Preference::parse("max LoadAvg * -1").unwrap();
        let props = offers(&[Some(5.0), Some(1.0)]);
        assert_eq!(p.order(&props, &mut no_shuffle), vec![1, 0]);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Preference::parse("sideways LoadAvg"),
            Err(TradingError::IllegalPreference { .. })
        ));
        assert!(matches!(
            Preference::parse("min"),
            Err(TradingError::IllegalPreference { .. })
        ));
        assert!(matches!(
            Preference::parse("min (("),
            Err(TradingError::IllegalPreference { .. })
        ));
    }

    #[test]
    fn display_round_trips() {
        for src in ["first", "random", "min LoadAvg", "max A + B", "with A < 2"] {
            assert_eq!(Preference::parse(src).unwrap().to_string(), src);
        }
    }
}
