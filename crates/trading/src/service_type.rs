//! Service-type definitions: the trading-side schema of nonfunctional
//! properties.

use adapta_idl::TypeCode;

/// How a property may be supplied and changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PropMode {
    /// Optional, modifiable.
    #[default]
    Normal,
    /// Optional, fixed once exported.
    Readonly,
    /// Required at export, modifiable.
    Mandatory,
    /// Required at export, fixed once exported.
    MandatoryReadonly,
}

impl PropMode {
    /// True if the property must be present at export time.
    pub fn is_mandatory(self) -> bool {
        matches!(self, PropMode::Mandatory | PropMode::MandatoryReadonly)
    }

    /// True if the property cannot change after export.
    pub fn is_readonly(self) -> bool {
        matches!(self, PropMode::Readonly | PropMode::MandatoryReadonly)
    }
}

/// One property in a service type.
#[derive(Debug, Clone, PartialEq)]
pub struct PropDef {
    /// Property name as used in constraints.
    pub name: String,
    /// Declared value type.
    pub type_code: TypeCode,
    /// Supply/modification mode.
    pub mode: PropMode,
}

impl PropDef {
    /// Creates a property definition.
    pub fn new(name: impl Into<String>, type_code: TypeCode, mode: PropMode) -> Self {
        PropDef {
            name: name.into(),
            type_code,
            mode,
        }
    }
}

/// A service type: name, optional base type, property definitions.
///
/// Subtype offers are returned by queries for the base type unless the
/// importer sets `exact_type_match`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceTypeDef {
    /// Type name (e.g. `"HelloService"`).
    pub name: String,
    /// Base type, when this type specialises another.
    pub base: Option<String>,
    /// Property definitions declared directly on this type.
    pub properties: Vec<PropDef>,
}

impl ServiceTypeDef {
    /// Creates a type with no base and no properties.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceTypeDef {
            name: name.into(),
            base: None,
            properties: Vec::new(),
        }
    }

    /// Sets the base type; returns `self` for chaining.
    pub fn extends(mut self, base: impl Into<String>) -> Self {
        self.base = Some(base.into());
        self
    }

    /// Adds a property; returns `self` for chaining.
    pub fn with_property(mut self, prop: PropDef) -> Self {
        self.properties.push(prop);
        self
    }

    /// Finds a property declared directly on this type.
    pub fn property(&self, name: &str) -> Option<&PropDef> {
        self.properties.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(PropMode::Mandatory.is_mandatory());
        assert!(PropMode::MandatoryReadonly.is_mandatory());
        assert!(!PropMode::Readonly.is_mandatory());
        assert!(PropMode::Readonly.is_readonly());
        assert!(PropMode::MandatoryReadonly.is_readonly());
        assert!(!PropMode::Normal.is_readonly());
    }

    #[test]
    fn builder_chains() {
        let t = ServiceTypeDef::new("ImageService")
            .extends("Service")
            .with_property(PropDef::new(
                "LoadAvg",
                TypeCode::Double,
                PropMode::Mandatory,
            ))
            .with_property(PropDef::new("Host", TypeCode::Str, PropMode::Readonly));
        assert_eq!(t.base.as_deref(), Some("Service"));
        assert_eq!(t.properties.len(), 2);
        assert!(t.property("Host").is_some());
        assert!(t.property("Nope").is_none());
    }
}
