//! Trader federation links.
//!
//! A trader may *link* other traders; an import query whose
//! `hop_count` policy is positive is forwarded over every link with
//! the hop budget decremented, and the remote matches are merged into
//! the local result before preference ordering. Because federated
//! traders share the `offer-N` id namespace, merged results are
//! de-duplicated by `(offer id, target)` — so a link cycle (A links B,
//! B links A) terminates via the hop budget *and* does not inflate the
//! result set with copies of the same offer.

use adapta_orb::{ObjRef, Orb};
use adapta_telemetry::registry;
use parking_lot::RwLock;

use crate::offer::OfferMatch;
use crate::query::Query;
use crate::servant::RemoteTrader;

/// One federation link: a name plus the linked trader's servant.
#[derive(Debug, Clone)]
pub struct Link {
    /// The link name (unique per trader by convention, not enforced).
    pub name: String,
    /// The linked trader's `Trader` servant reference.
    pub target: ObjRef,
}

/// The links a trader holds, with the federation traversal logic.
#[derive(Debug, Default)]
pub(crate) struct LinkSet {
    links: RwLock<Vec<Link>>,
}

impl LinkSet {
    /// Adds a link.
    pub(crate) fn add(&self, name: impl Into<String>, target: ObjRef) {
        self.links.write().push(Link {
            name: name.into(),
            target,
        });
    }

    /// Removes a link by name; `true` if one was removed.
    pub(crate) fn remove(&self, name: &str) -> bool {
        let mut links = self.links.write();
        let before = links.len();
        links.retain(|l| l.name != name);
        links.len() != before
    }

    /// The link names, in insertion order.
    pub(crate) fn names(&self) -> Vec<String> {
        self.links.read().iter().map(|l| l.name.clone()).collect()
    }

    /// A snapshot of the links.
    pub(crate) fn snapshot(&self) -> Vec<Link> {
        self.links.read().clone()
    }

    /// Forwards `q` over every link (each traversal spends one hop) and
    /// merges the remote matches into `matches`, de-duplicating by
    /// `(offer id, target)`. A link whose remote query fails is skipped:
    /// federation degrades to the reachable subset rather than failing
    /// the whole query.
    pub(crate) fn federate(&self, orb: &Orb, q: &Query, matches: &mut Vec<OfferMatch>) {
        if q.policies.hop_count == 0 {
            return;
        }
        let links = self.snapshot();
        for link in links {
            let mut sub = q.clone();
            sub.policies.hop_count -= 1;
            registry().counter("trading.federation.forwards").incr();
            let remote = RemoteTrader::new(orb.proxy(&link.target));
            match crate::servant::remote_query(&remote, &sub) {
                Ok(remote_matches) => {
                    for m in remote_matches {
                        let duplicate = matches
                            .iter()
                            .any(|have| have.id == m.id && have.target == m.target);
                        if duplicate {
                            registry().counter("trading.federation.duplicates").incr();
                        } else {
                            matches.push(m);
                        }
                    }
                }
                Err(_) => {
                    registry().counter("trading.federation.link_errors").incr();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::offer::ExportRequest;
    use crate::servant::TraderServant;
    use crate::service_type::{PropDef, PropMode, ServiceTypeDef};
    use crate::trader::Trader;
    use adapta_idl::{TypeCode, Value};

    fn hello_type() -> ServiceTypeDef {
        ServiceTypeDef::new("Hello").with_property(PropDef::new(
            "LoadAvg",
            TypeCode::Double,
            PropMode::Mandatory,
        ))
    }

    /// A trader on its own orb node, exposed as a servant.
    fn node(name: &str) -> (Orb, Trader, ObjRef) {
        let orb = Orb::new(name);
        let trader = Trader::new(&orb);
        trader.add_type(hello_type()).unwrap();
        let objref = orb
            .activate("trader", TraderServant::new(trader.clone()))
            .unwrap();
        (orb, trader, objref)
    }

    fn export(trader: &Trader, node: &str, load: f64) {
        trader
            .export(
                ExportRequest::new(
                    "Hello",
                    ObjRef::new(format!("inproc://{node}"), "svc", "Hello"),
                )
                .with_property("LoadAvg", Value::from(load)),
            )
            .unwrap();
    }

    #[test]
    fn hop_budget_exhausts_along_a_chain() {
        // A -> B -> C, one offer on each.
        let (_oa, a, _ra) = node("t-link-chain-a");
        let (_ob, b, rb) = node("t-link-chain-b");
        let (_oc, c, rc) = node("t-link-chain-c");
        export(&a, "a", 1.0);
        export(&b, "b", 2.0);
        export(&c, "c", 3.0);
        a.add_link("to-b", rb);
        b.add_link("to-c", rc);

        // hops=0: local only; hops=1: A+B; hops=2: all three.
        assert_eq!(a.query(&Query::new("Hello").hops(0)).unwrap().len(), 1);
        assert_eq!(a.query(&Query::new("Hello").hops(1)).unwrap().len(), 2);
        assert_eq!(a.query(&Query::new("Hello").hops(2)).unwrap().len(), 3);
    }

    #[test]
    fn link_cycle_terminates_and_does_not_duplicate() {
        // A and B link each other; the hop budget terminates the cycle
        // and (id, target) dedup keeps each offer exactly once even
        // though A's own offer comes back via B -> A.
        let (_oa, a, ra) = node("t-link-cycle-a");
        let (_ob, b, rb) = node("t-link-cycle-b");
        export(&a, "a", 1.0);
        export(&b, "b", 2.0);
        a.add_link("to-b", rb);
        b.add_link("to-a", ra);

        for hops in [1u32, 2, 3, 4] {
            let matches = a.query(&Query::new("Hello").hops(hops)).unwrap();
            assert_eq!(
                matches.len(),
                2,
                "hops={hops}: cycle must not duplicate offers"
            );
        }
    }

    #[test]
    fn federated_matches_are_merged_under_the_preference() {
        // The best offer lives on the remote trader: preference
        // ordering must apply across the merged set, not per trader.
        let (_oa, a, _ra) = node("t-link-pref-a");
        let (_ob, b, rb) = node("t-link-pref-b");
        export(&a, "a", 30.0);
        export(&b, "b", 5.0);
        a.add_link("to-b", rb);

        let matches = a
            .query(
                &Query::new("Hello")
                    .constraint("LoadAvg < 50")
                    .preference("min LoadAvg")
                    .hops(1),
            )
            .unwrap();
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].prop("LoadAvg"), Some(&Value::from(5.0)));
        assert_eq!(matches[1].prop("LoadAvg"), Some(&Value::from(30.0)));
    }

    #[test]
    fn dead_link_degrades_instead_of_failing() {
        let (_oa, a, _ra) = node("t-link-dead-a");
        export(&a, "a", 1.0);
        a.add_link(
            "to-nowhere",
            ObjRef::new("inproc://t-link-vanished", "trader", "Trader"),
        );
        let matches = a.query(&Query::new("Hello").hops(1)).unwrap();
        assert_eq!(matches.len(), 1, "local offers survive a dead link");
    }

    #[test]
    fn remove_link_stops_federation() {
        let (_oa, a, _ra) = node("t-link-rm-a");
        let (_ob, b, rb) = node("t-link-rm-b");
        export(&b, "b", 1.0);
        a.add_link("to-b", rb);
        assert_eq!(a.query(&Query::new("Hello").hops(1)).unwrap().len(), 1);
        assert!(a.remove_link("to-b"));
        assert!(!a.remove_link("to-b"));
        assert!(a.query(&Query::new("Hello").hops(1)).unwrap().is_empty());
        assert!(a.link_names().is_empty());
    }

    #[test]
    fn constraints_filter_remotely_before_merging() {
        let (_oa, a, _ra) = node("t-link-filter-a");
        let (_ob, b, rb) = node("t-link-filter-b");
        export(&b, "b-ok", 10.0);
        export(&b, "b-hot", 90.0);
        a.add_link("to-b", rb);
        let matches = a
            .query(&Query::new("Hello").constraint("LoadAvg < 50").hops(1))
            .unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].prop("LoadAvg"), Some(&Value::from(10.0)));
    }

    #[test]
    fn federation_respects_withdrawals_mid_sequence() {
        let (_oa, a, _ra) = node("t-link-wd-a");
        let (_ob, b, rb) = node("t-link-wd-b");
        let id = b
            .export(
                ExportRequest::new("Hello", ObjRef::new("inproc://wd-b", "svc", "Hello"))
                    .with_property("LoadAvg", Value::from(1.0))
                    .with_lease(Duration::from_secs(60)),
            )
            .unwrap();
        a.add_link("to-b", rb);
        assert_eq!(a.query(&Query::new("Hello").hops(1)).unwrap().len(), 1);
        b.withdraw(&id).unwrap();
        assert!(a.query(&Query::new("Hello").hops(1)).unwrap().is_empty());
    }
}
