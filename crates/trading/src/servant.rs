//! Remote access to a trader: the servant exposing it over the ORB and
//! the client-side wrapper, both behind one [`TradingService`] trait.

use std::time::Duration;

use adapta_idl::{TypeCode, Value};
use adapta_orb::{OrbError, Proxy, Servant};

use crate::error::TradingError;
use crate::offer::{ExportRequest, OfferId, OfferMatch, PropValue};
use crate::query::Query;
use crate::service_type::{PropDef, PropMode, ServiceTypeDef};
use crate::trader::Trader;
use crate::Result;

/// The operations shared by local and remote traders, letting clients
/// (smart proxies, service agents) stay agnostic of trader placement.
pub trait TradingService: Send + Sync {
    /// Registers a service type.
    ///
    /// # Errors
    ///
    /// Duplicate or unresolvable types.
    fn add_type(&self, def: ServiceTypeDef) -> Result<()>;

    /// Exports an offer; returns its id.
    ///
    /// # Errors
    ///
    /// Schema violations (see [`Trader::export`]).
    fn export(&self, request: ExportRequest) -> Result<OfferId>;

    /// Withdraws an offer.
    ///
    /// # Errors
    ///
    /// Unknown offers.
    fn withdraw(&self, id: &OfferId) -> Result<()>;

    /// Renews an offer's liveness lease (and lifts quarantine); see
    /// [`Trader::renew`].
    ///
    /// # Errors
    ///
    /// Unknown (or already swept) offers.
    fn renew(&self, id: &OfferId, ttl: Option<Duration>) -> Result<()>;

    /// Modifies an offer's properties.
    ///
    /// # Errors
    ///
    /// Unknown offers, readonly or ill-typed properties.
    fn modify(&self, id: &OfferId, props: Vec<(String, PropValue)>) -> Result<()>;

    /// Runs an import query.
    ///
    /// # Errors
    ///
    /// Unknown type or illegal constraint/preference.
    fn query(&self, q: &Query) -> Result<Vec<OfferMatch>>;
}

impl TradingService for Trader {
    fn add_type(&self, def: ServiceTypeDef) -> Result<()> {
        Trader::add_type(self, def)
    }
    fn export(&self, request: ExportRequest) -> Result<OfferId> {
        Trader::export(self, request)
    }
    fn withdraw(&self, id: &OfferId) -> Result<()> {
        Trader::withdraw(self, id)
    }
    fn renew(&self, id: &OfferId, ttl: Option<Duration>) -> Result<()> {
        Trader::renew(self, id, ttl)
    }
    fn modify(&self, id: &OfferId, props: Vec<(String, PropValue)>) -> Result<()> {
        Trader::modify(self, id, props)
    }
    fn query(&self, q: &Query) -> Result<Vec<OfferMatch>> {
        Trader::query(self, q)
    }
}

// ---- wire helpers -------------------------------------------------------

fn type_code_to_string(tc: &TypeCode) -> String {
    tc.to_string()
}

fn type_code_from_string(s: &str) -> Option<TypeCode> {
    Some(match s {
        "void" => TypeCode::Void,
        "any" => TypeCode::Any,
        "boolean" => TypeCode::Boolean,
        "long" => TypeCode::Long,
        "double" => TypeCode::Double,
        "string" => TypeCode::Str,
        "octets" => TypeCode::Octets,
        "struct" => TypeCode::AnyStruct,
        "Object" => TypeCode::Object(String::new()),
        other => {
            if let Some(inner) = other
                .strip_prefix("sequence<")
                .and_then(|r| r.strip_suffix('>'))
            {
                TypeCode::Sequence(Box::new(type_code_from_string(inner)?))
            } else if let Some(id) = other
                .strip_prefix("Object<")
                .and_then(|r| r.strip_suffix('>'))
            {
                TypeCode::Object(id.to_owned())
            } else {
                return None;
            }
        }
    })
}

fn mode_to_str(mode: PropMode) -> &'static str {
    match mode {
        PropMode::Normal => "normal",
        PropMode::Readonly => "readonly",
        PropMode::Mandatory => "mandatory",
        PropMode::MandatoryReadonly => "mandatory_readonly",
    }
}

fn mode_from_str(s: &str) -> Option<PropMode> {
    Some(match s {
        "normal" => PropMode::Normal,
        "readonly" => PropMode::Readonly,
        "mandatory" => PropMode::Mandatory,
        "mandatory_readonly" => PropMode::MandatoryReadonly,
        _ => return None,
    })
}

/// Encodes a service-type definition for the wire.
pub fn service_type_to_value(def: &ServiceTypeDef) -> Value {
    Value::map([
        ("name", Value::from(def.name.as_str())),
        (
            "base",
            def.base.as_deref().map(Value::from).unwrap_or(Value::Null),
        ),
        (
            "props",
            Value::Seq(
                def.properties
                    .iter()
                    .map(|p| {
                        Value::map([
                            ("name", Value::from(p.name.as_str())),
                            ("type", Value::from(type_code_to_string(&p.type_code))),
                            ("mode", Value::from(mode_to_str(p.mode))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a service-type definition; `None` on malformed input.
pub fn service_type_from_value(v: &Value) -> Option<ServiceTypeDef> {
    let mut def = ServiceTypeDef::new(v.get("name")?.as_str()?);
    if let Some(base) = v.get("base").and_then(Value::as_str) {
        def.base = Some(base.to_owned());
    }
    for p in v.get("props")?.as_seq()? {
        def.properties.push(PropDef::new(
            p.get("name")?.as_str()?,
            type_code_from_string(p.get("type")?.as_str()?)?,
            mode_from_str(p.get("mode")?.as_str()?)?,
        ));
    }
    Some(def)
}

fn props_to_value(props: &[(String, PropValue)]) -> Value {
    Value::Map(
        props
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect(),
    )
}

fn props_from_value(v: &Value) -> Option<Vec<(String, PropValue)>> {
    v.as_map()?
        .iter()
        .map(|(k, pv)| Some((k.clone(), PropValue::from_value(pv)?)))
        .collect()
}

/// Decodes an optional lease-TTL argument (milliseconds as `Long`, or
/// `Null`/absent for no lease). Outer `None` means malformed.
fn lease_from_arg(v: Option<&Value>) -> Option<Option<Duration>> {
    match v {
        None | Some(Value::Null) => Some(None),
        Some(v) => {
            let ms = u64::try_from(v.as_long()?).ok()?;
            Some(Some(Duration::from_millis(ms)))
        }
    }
}

fn lease_to_arg(lease: Option<Duration>) -> Value {
    match lease {
        Some(ttl) => Value::Long(i64::try_from(ttl.as_millis()).unwrap_or(i64::MAX)),
        None => Value::Null,
    }
}

fn bad_args(what: &str) -> OrbError {
    OrbError::exception(format!("malformed arguments to {what}"))
}

fn to_orb_err(e: TradingError) -> OrbError {
    OrbError::exception(e.to_string())
}

// ---- servant -------------------------------------------------------------

/// Exposes a [`Trader`] as an ORB servant (interface `Trader`).
///
/// Operations: `addType`, `export` (optional fourth argument: lease TTL
/// in milliseconds), `withdraw`, `renew`, `modify`, `query`,
/// `listLinks`, `addLink`.
#[derive(Debug, Clone)]
pub struct TraderServant {
    trader: Trader,
}

impl TraderServant {
    /// Wraps a trader for remote access.
    pub fn new(trader: Trader) -> Self {
        TraderServant { trader }
    }
}

impl Servant for TraderServant {
    fn interface(&self) -> &str {
        "Trader"
    }

    fn invoke(&self, op: &str, args: Vec<Value>) -> adapta_orb::OrbResult<Value> {
        match op {
            "addType" => {
                let def = args
                    .first()
                    .and_then(service_type_from_value)
                    .ok_or_else(|| bad_args("addType"))?;
                self.trader.add_type(def).map_err(to_orb_err)?;
                Ok(Value::Null)
            }
            "export" => {
                let service_type = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad_args("export"))?;
                let target = args
                    .get(1)
                    .and_then(Value::as_objref)
                    .ok_or_else(|| bad_args("export"))?;
                let properties = args
                    .get(2)
                    .and_then(props_from_value)
                    .ok_or_else(|| bad_args("export"))?;
                let lease = lease_from_arg(args.get(3)).ok_or_else(|| bad_args("export"))?;
                let id = self
                    .trader
                    .export(ExportRequest {
                        service_type: service_type.to_owned(),
                        target: target.clone(),
                        properties,
                        lease,
                    })
                    .map_err(to_orb_err)?;
                Ok(Value::from(id.as_str()))
            }
            "withdraw" => {
                let id = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad_args("withdraw"))?;
                self.trader
                    .withdraw(&OfferId::from_string(id))
                    .map_err(to_orb_err)?;
                Ok(Value::Null)
            }
            "renew" => {
                let id = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad_args("renew"))?;
                let ttl = lease_from_arg(args.get(1)).ok_or_else(|| bad_args("renew"))?;
                self.trader
                    .renew(&OfferId::from_string(id), ttl)
                    .map_err(to_orb_err)?;
                Ok(Value::Null)
            }
            "modify" => {
                let id = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad_args("modify"))?;
                let props = args
                    .get(1)
                    .and_then(props_from_value)
                    .ok_or_else(|| bad_args("modify"))?;
                self.trader
                    .modify(&OfferId::from_string(id), props)
                    .map_err(to_orb_err)?;
                Ok(Value::Null)
            }
            "query" => {
                let q = args
                    .first()
                    .and_then(Query::from_value)
                    .ok_or_else(|| bad_args("query"))?;
                let matches = self.trader.query(&q).map_err(to_orb_err)?;
                Ok(Value::Seq(
                    matches.iter().map(OfferMatch::to_value).collect(),
                ))
            }
            "addLink" => {
                let name = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad_args("addLink"))?;
                let target = args
                    .get(1)
                    .and_then(Value::as_objref)
                    .ok_or_else(|| bad_args("addLink"))?;
                self.trader.add_link(name, target.clone());
                Ok(Value::Null)
            }
            "listLinks" => Ok(Value::Seq(
                self.trader
                    .link_names()
                    .into_iter()
                    .map(Value::from)
                    .collect(),
            )),
            other => Err(OrbError::unknown_operation("Trader", other)),
        }
    }
}

// ---- remote client ---------------------------------------------------------

/// A client-side trader handle backed by a proxy to a remote
/// [`TraderServant`].
#[derive(Debug, Clone)]
pub struct RemoteTrader {
    proxy: Proxy,
}

impl RemoteTrader {
    /// Wraps a proxy to a trader servant.
    pub fn new(proxy: Proxy) -> Self {
        RemoteTrader { proxy }
    }
}

/// Runs a query against a remote trader (shared with federation).
pub(crate) fn remote_query(remote: &RemoteTrader, q: &Query) -> Result<Vec<OfferMatch>> {
    let reply = remote
        .proxy
        .invoke("query", vec![q.to_value()])
        .map_err(TradingError::Orb)?;
    let items = reply.as_seq().ok_or_else(|| {
        TradingError::Orb(OrbError::Marshal("query reply must be a sequence".into()))
    })?;
    items
        .iter()
        .map(|v| {
            OfferMatch::from_value(v)
                .ok_or_else(|| TradingError::Orb(OrbError::Marshal("malformed offer match".into())))
        })
        .collect()
}

impl TradingService for RemoteTrader {
    fn add_type(&self, def: ServiceTypeDef) -> Result<()> {
        self.proxy
            .invoke("addType", vec![service_type_to_value(&def)])
            .map_err(TradingError::Orb)?;
        Ok(())
    }

    fn export(&self, request: ExportRequest) -> Result<OfferId> {
        let reply = self
            .proxy
            .invoke(
                "export",
                vec![
                    Value::from(request.service_type.as_str()),
                    Value::ObjRef(request.target.clone()),
                    props_to_value(&request.properties),
                    lease_to_arg(request.lease),
                ],
            )
            .map_err(TradingError::Orb)?;
        let id = reply.as_str().ok_or_else(|| {
            TradingError::Orb(OrbError::Marshal("export reply must be a string".into()))
        })?;
        Ok(OfferId::from_string(id))
    }

    fn withdraw(&self, id: &OfferId) -> Result<()> {
        self.proxy
            .invoke("withdraw", vec![Value::from(id.as_str())])
            .map_err(TradingError::Orb)?;
        Ok(())
    }

    fn renew(&self, id: &OfferId, ttl: Option<Duration>) -> Result<()> {
        self.proxy
            .invoke("renew", vec![Value::from(id.as_str()), lease_to_arg(ttl)])
            .map_err(TradingError::Orb)?;
        Ok(())
    }

    fn modify(&self, id: &OfferId, props: Vec<(String, PropValue)>) -> Result<()> {
        self.proxy
            .invoke(
                "modify",
                vec![Value::from(id.as_str()), props_to_value(&props)],
            )
            .map_err(TradingError::Orb)?;
        Ok(())
    }

    fn query(&self, q: &Query) -> Result<Vec<OfferMatch>> {
        remote_query(self, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_idl::ObjRefData;
    use adapta_orb::Orb;

    fn remote_pair() -> (Orb, RemoteTrader) {
        let trader_orb = Orb::new("t-svnt-trader");
        let trader = Trader::new(&trader_orb);
        let objref = trader_orb
            .activate("trader", TraderServant::new(trader))
            .unwrap();
        let client_orb = Orb::new("t-svnt-client");
        let remote = RemoteTrader::new(client_orb.proxy(&objref));
        (client_orb, remote)
    }

    fn hello_type() -> ServiceTypeDef {
        ServiceTypeDef::new("Hello").with_property(PropDef::new(
            "LoadAvg",
            TypeCode::Double,
            PropMode::Mandatory,
        ))
    }

    #[test]
    fn full_remote_lifecycle() {
        let (_client, remote) = remote_pair();
        remote.add_type(hello_type()).unwrap();
        let id = remote
            .export(
                ExportRequest::new("Hello", ObjRefData::new("inproc://s", "h", "Hello"))
                    .with_property("LoadAvg", Value::from(10.0)),
            )
            .unwrap();
        let matches = remote
            .query(&Query::new("Hello").constraint("LoadAvg < 50"))
            .unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].prop("LoadAvg"), Some(&Value::from(10.0)));

        remote
            .modify(&id, vec![("LoadAvg".into(), Value::from(99.0).into())])
            .unwrap();
        assert!(remote
            .query(&Query::new("Hello").constraint("LoadAvg < 50"))
            .unwrap()
            .is_empty());

        remote.withdraw(&id).unwrap();
        assert!(remote.query(&Query::new("Hello")).unwrap().is_empty());
    }

    #[test]
    fn remote_lease_and_renew() {
        let (_client, remote) = remote_pair();
        remote.add_type(hello_type()).unwrap();
        let id = remote
            .export(
                ExportRequest::new("Hello", ObjRefData::new("inproc://s", "h", "Hello"))
                    .with_property("LoadAvg", Value::from(1.0))
                    .with_lease(Duration::from_millis(25)),
            )
            .unwrap();
        assert_eq!(remote.query(&Query::new("Hello")).unwrap().len(), 1);
        std::thread::sleep(Duration::from_millis(40));
        assert!(remote.query(&Query::new("Hello")).unwrap().is_empty());
        remote.renew(&id, Some(Duration::from_millis(500))).unwrap();
        assert_eq!(remote.query(&Query::new("Hello")).unwrap().len(), 1);
        assert!(remote
            .renew(&OfferId::from_string("offer-99"), None)
            .is_err());
    }

    #[test]
    fn remote_errors_surface() {
        let (_client, remote) = remote_pair();
        let err = remote.query(&Query::new("Nope")).unwrap_err();
        assert!(matches!(err, TradingError::Orb(_)));
        let err = remote
            .withdraw(&OfferId::from_string("offer-1"))
            .unwrap_err();
        assert!(err.to_string().contains("offer-1"));
    }

    #[test]
    fn type_code_string_round_trip() {
        for tc in [
            TypeCode::Void,
            TypeCode::Any,
            TypeCode::Boolean,
            TypeCode::Long,
            TypeCode::Double,
            TypeCode::Str,
            TypeCode::Octets,
            TypeCode::AnyStruct,
            TypeCode::Object(String::new()),
            TypeCode::Object("Monitor".into()),
            TypeCode::Sequence(Box::new(TypeCode::Double)),
            TypeCode::Sequence(Box::new(TypeCode::Sequence(Box::new(TypeCode::Str)))),
        ] {
            assert_eq!(
                type_code_from_string(&type_code_to_string(&tc)),
                Some(tc.clone()),
                "round trip of {tc}"
            );
        }
        assert_eq!(type_code_from_string("garbage<"), None);
    }

    #[test]
    fn service_type_wire_round_trip() {
        let def = ServiceTypeDef::new("ImageService")
            .extends("Service")
            .with_property(PropDef::new(
                "LoadAvg",
                TypeCode::Double,
                PropMode::Mandatory,
            ))
            .with_property(PropDef::new("Host", TypeCode::Str, PropMode::Readonly));
        assert_eq!(
            service_type_from_value(&service_type_to_value(&def)),
            Some(def)
        );
    }

    #[test]
    fn federation_follows_links() {
        // Trader B holds the offer; trader A links to B.
        let orb_b = Orb::new("t-fed-b");
        let trader_b = Trader::new(&orb_b);
        trader_b.add_type(hello_type()).unwrap();
        trader_b
            .export(
                ExportRequest::new("Hello", ObjRefData::new("inproc://s", "h", "Hello"))
                    .with_property("LoadAvg", Value::from(5.0)),
            )
            .unwrap();
        let b_ref = orb_b
            .activate("trader", TraderServant::new(trader_b))
            .unwrap();

        let orb_a = Orb::new("t-fed-a");
        let trader_a = Trader::new(&orb_a);
        trader_a.add_type(hello_type()).unwrap();
        trader_a.add_link("to-b", b_ref);

        // One hop reaches B's offer.
        let matches = trader_a.query(&Query::new("Hello").hops(1)).unwrap();
        assert_eq!(matches.len(), 1);
        // Zero hops stays local.
        assert!(trader_a
            .query(&Query::new("Hello").hops(0))
            .unwrap()
            .is_empty());
    }
}
