//! Property tests for the constraint language and preferences: parsing
//! and evaluation are total, and preference ordering is a permutation.

use adapta_idl::Value;
use adapta_trading::{Constraint, Preference};
use proptest::prelude::*;
use std::collections::HashMap;

fn props_strategy() -> impl Strategy<Value = HashMap<String, Value>> {
    proptest::collection::hash_map(
        "[A-Za-z][A-Za-z0-9_]{0,8}",
        prop_oneof![
            any::<f64>().prop_map(Value::Double),
            any::<i64>().prop_map(Value::Long),
            any::<bool>().prop_map(Value::Bool),
            "[a-z]{0,8}".prop_map(Value::from),
        ],
        0..6,
    )
}

proptest! {
    #[test]
    fn parser_never_panics(src in ".{0,80}") {
        let _ = Constraint::parse(&src);
        let _ = Preference::parse(&src);
    }

    #[test]
    fn evaluation_is_total(
        src in prop_oneof![
            Just("LoadAvg < 50".to_owned()),
            Just("A == B and not (C > 2) or exist D".to_owned()),
            Just("A + B * 2 - C / 4 >= D".to_owned()),
            Just("Host ~ 'node' and LoadAvgIncreasing == no".to_owned()),
            Just("TRUE or A < B".to_owned()),
            Just("-A <= 0".to_owned()),
        ],
        props in props_strategy(),
    ) {
        let c = Constraint::parse(&src).expect("fixed constraints parse");
        // Never panics; any boolean outcome is acceptable.
        let _ = c.matches(&props);
    }

    #[test]
    fn preference_order_is_a_permutation(
        pref in prop_oneof![
            Just("min LoadAvg".to_owned()),
            Just("max LoadAvg".to_owned()),
            Just("with LoadAvg < 50".to_owned()),
            Just("first".to_owned()),
        ],
        loads in proptest::collection::vec(
            proptest::option::of(any::<f64>().prop_filter("finite", |f| f.is_finite())),
            0..12,
        ),
    ) {
        let p = Preference::parse(&pref).unwrap();
        let props: Vec<Vec<(String, Value)>> = loads
            .iter()
            .map(|load| match load {
                Some(l) => vec![("LoadAvg".to_owned(), Value::Double(*l))],
                None => vec![],
            })
            .collect();
        let mut shuffle = |_: &mut Vec<usize>| {};
        let order = p.order(&props, &mut shuffle);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..props.len()).collect::<Vec<_>>());
    }

    #[test]
    fn min_preference_is_monotone(
        loads in proptest::collection::vec(
            (0u32..1000).prop_map(|n| n as f64 / 10.0),
            1..12,
        ),
    ) {
        let p = Preference::parse("min LoadAvg").unwrap();
        let props: Vec<Vec<(String, Value)>> = loads
            .iter()
            .map(|l| vec![("LoadAvg".to_owned(), Value::Double(*l))])
            .collect();
        let mut shuffle = |_: &mut Vec<usize>| {};
        let order = p.order(&props, &mut shuffle);
        for pair in order.windows(2) {
            prop_assert!(loads[pair[0]] <= loads[pair[1]]);
        }
    }

    #[test]
    fn numeric_comparison_agrees_with_rust(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let props: HashMap<String, Value> = [
            ("A".to_owned(), Value::Double(a)),
            ("B".to_owned(), Value::Double(b)),
        ]
        .into_iter()
        .collect();
        let check = |src: &str, expected: bool| {
            let c = Constraint::parse(src).unwrap();
            assert_eq!(c.matches(&props), expected, "{src} with a={a} b={b}");
        };
        check("A < B", a < b);
        check("A <= B", a <= b);
        check("A == B", a == b);
        check("A != B", a != b);
        check("A >= B", a >= b);
        check("A > B", a > b);
    }
}
