//! Per-replica runtime statistics.
//!
//! Every replica carries a lock-free [`ReplicaStats`]: an EWMA of
//! observed call latency, the number of calls currently in flight, an
//! EWMA error rate, and the last load value pushed by a monitor
//! (see `adapta-monitor`'s `notifyEvent(evid, value)` pushes). Routing
//! policies read these to score replicas; the caller feeds them from
//! call outcomes.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Smoothing factor for the latency and error EWMAs. High enough that
/// a degrading replica is noticed within a handful of calls, low
/// enough that one outlier does not dominate.
const EWMA_ALPHA: f64 = 0.3;

/// Runtime statistics for one replica. All fields are atomics: updates
/// come from many caller threads, reads from the routing policy on
/// every pick.
#[derive(Debug, Default)]
pub struct ReplicaStats {
    /// Calls handed to this replica by a policy pick.
    picks: AtomicU64,
    /// Calls completed (success or error).
    completed: AtomicU64,
    /// Calls completed with an error.
    errors: AtomicU64,
    /// Calls currently in flight.
    inflight: AtomicI64,
    /// EWMA of successful-call latency, in microseconds (f64 bits).
    /// Zero means "no observation yet".
    ewma_latency_us: AtomicU64,
    /// EWMA of the error indicator (1.0 = error, 0.0 = success),
    /// stored as f64 bits.
    error_ewma: AtomicU64,
    /// Last monitor-pushed load value (f64 bits); NaN bits = unset.
    last_load: AtomicU64,
}

/// Fold `sample` into the f64-bits EWMA stored in `cell`.
fn ewma_update(cell: &AtomicU64, sample: f64, seed_on_first: bool) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let prev = f64::from_bits(current);
        let next = if prev == 0.0 && seed_on_first {
            sample
        } else {
            EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * prev
        };
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

impl ReplicaStats {
    /// Creates zeroed stats. `last_load` starts unset (NaN).
    pub fn new() -> ReplicaStats {
        let stats = ReplicaStats::default();
        stats.last_load.store(f64::NAN.to_bits(), Ordering::Relaxed);
        stats
    }

    /// Records that the policy handed a call to this replica.
    pub fn on_pick(&self) {
        self.picks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a call entering flight.
    pub fn on_start(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a call completing. Latency feeds the EWMA only on
    /// success — fast failures (connection refused) would otherwise
    /// make a dead replica look attractively quick.
    pub fn on_complete(&self, latency: Duration, ok: bool) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if ok {
            ewma_update(&self.ewma_latency_us, latency.as_secs_f64() * 1e6, true);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        ewma_update(&self.error_ewma, if ok { 0.0 } else { 1.0 }, false);
    }

    /// Records a monitor-pushed load value.
    pub fn record_load(&self, load: f64) {
        self.last_load.store(load.to_bits(), Ordering::Relaxed);
    }

    /// Times this replica has been picked.
    pub fn picks(&self) -> u64 {
        self.picks.load(Ordering::Relaxed)
    }

    /// Calls completed (success or error).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Calls completed with an error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Calls currently in flight (never negative in practice).
    pub fn inflight(&self) -> i64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// EWMA latency of successful calls, if any completed yet.
    pub fn ewma_latency(&self) -> Option<Duration> {
        let us = f64::from_bits(self.ewma_latency_us.load(Ordering::Relaxed));
        (us > 0.0).then(|| Duration::from_secs_f64(us / 1e6))
    }

    /// EWMA error rate in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        f64::from_bits(self.error_ewma.load(Ordering::Relaxed))
    }

    /// Last monitor-pushed load value, if one arrived.
    pub fn load(&self) -> Option<f64> {
        let v = f64::from_bits(self.last_load.load(Ordering::Relaxed));
        (!v.is_nan()).then_some(v)
    }

    /// Load score for latency-aware policies: EWMA latency (µs) scaled
    /// by queue depth, the classic "expected wait" estimate. A replica
    /// with no latency observation scores near zero so new arrivals
    /// get probed instead of starved.
    pub fn score(&self) -> f64 {
        let ewma_us = f64::from_bits(self.ewma_latency_us.load(Ordering::Relaxed)).max(1.0);
        let queue = (self.inflight.load(Ordering::Relaxed).max(0) + 1) as f64;
        if self.ewma_latency().is_none() {
            // Unprobed: score only by queue depth, below any replica
            // with real observations.
            return queue;
        }
        ewma_us * queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_tracks_latency_and_errors() {
        let s = ReplicaStats::new();
        assert!(s.ewma_latency().is_none());
        s.on_start();
        s.on_complete(Duration::from_millis(10), true);
        assert_eq!(s.ewma_latency().unwrap(), Duration::from_millis(10));
        // Converges toward a new steady state.
        for _ in 0..50 {
            s.on_start();
            s.on_complete(Duration::from_millis(2), true);
        }
        let settled = s.ewma_latency().unwrap();
        assert!(settled < Duration::from_millis(3), "{settled:?}");
        assert_eq!(s.error_rate(), 0.0);

        s.on_start();
        s.on_complete(Duration::from_millis(2), false);
        assert!(s.error_rate() > 0.0);
        assert_eq!(s.errors(), 1);
        assert_eq!(s.inflight(), 0);
    }

    #[test]
    fn failures_do_not_feed_the_latency_ewma() {
        let s = ReplicaStats::new();
        s.on_start();
        s.on_complete(Duration::from_micros(1), false);
        assert!(s.ewma_latency().is_none());
    }

    #[test]
    fn load_starts_unset() {
        let s = ReplicaStats::new();
        assert_eq!(s.load(), None);
        s.record_load(12.5);
        assert_eq!(s.load(), Some(12.5));
    }

    #[test]
    fn unprobed_replicas_score_below_probed_ones() {
        let probed = ReplicaStats::new();
        probed.on_start();
        probed.on_complete(Duration::from_millis(1), true);
        let fresh = ReplicaStats::new();
        assert!(fresh.score() < probed.score());
    }

    #[test]
    fn score_scales_with_queue_depth() {
        let s = ReplicaStats::new();
        s.on_start();
        s.on_complete(Duration::from_millis(5), true);
        let idle = s.score();
        s.on_start();
        s.on_start();
        assert!(s.score() > idle * 2.0);
        s.on_complete(Duration::from_millis(5), true);
        s.on_complete(Duration::from_millis(5), true);
    }
}
