//! The replica set: a trader query materialized as live routing state.
//!
//! A [`ReplicaSet`] owns a [`QueryHandle`] and turns each refresh delta
//! into replica lifecycle events: new matches become [`Replica`]s
//! (keeping the preference order the trader returned), retained matches
//! get their property snapshot updated *without* losing accumulated
//! stats, and withdrawn/expired matches are evicted. A background
//! refresher re-runs the query on a jittered interval so the set tracks
//! the trader without synchronized polling stampedes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use adapta_idl::Value;
use adapta_orb::ObjRef;
use adapta_telemetry::registry;
use adapta_trading::{OfferMatch, Query, QueryHandle, TradingService};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::policy::{policy_named, RoundRobin, RoutingPolicy};
use crate::stats::ReplicaStats;

/// One live replica: the offer snapshot plus runtime stats.
#[derive(Debug)]
pub struct Replica {
    /// Stable identity across refreshes: offer id + target URI (the
    /// same pair trading's federation dedups on).
    key: String,
    target: ObjRef,
    properties: Mutex<Vec<(String, Value)>>,
    dynamic: Mutex<Vec<(String, ObjRef)>>,
    stats: ReplicaStats,
}

impl Replica {
    /// Builds a replica from raw parts (tests, custom sets).
    pub fn from_parts(
        offer_id: impl Into<String>,
        target: ObjRef,
        properties: Vec<(String, Value)>,
        dynamic: Vec<(String, ObjRef)>,
    ) -> Replica {
        Replica {
            key: format!("{}@{}", offer_id.into(), target.to_uri()),
            target,
            properties: Mutex::new(properties),
            dynamic: Mutex::new(dynamic),
            stats: ReplicaStats::new(),
        }
    }

    fn from_match(m: &OfferMatch) -> Replica {
        Replica::from_parts(
            m.id.to_string(),
            m.target.clone(),
            m.properties.clone(),
            m.dynamic.clone(),
        )
    }

    fn match_key(m: &OfferMatch) -> String {
        format!("{}@{}", m.id, m.target.to_uri())
    }

    /// Stable replica identity (offer id + target URI).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The replica's object reference (what you invoke).
    pub fn target(&self) -> &ObjRef {
        &self.target
    }

    /// Runtime stats (shared with the routing policy).
    pub fn stats(&self) -> &ReplicaStats {
        &self.stats
    }

    /// Snapshot of the offer properties as of the last refresh.
    pub fn properties(&self) -> Vec<(String, Value)> {
        self.properties.lock().clone()
    }

    /// One property from the last-refresh snapshot.
    pub fn property(&self, name: &str) -> Option<Value> {
        self.properties
            .lock()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    /// A property coerced to f64 (Double or Long).
    pub fn property_f64(&self, name: &str) -> Option<f64> {
        let v = self.property(name)?;
        v.as_double().or_else(|| v.as_long().map(|l| l as f64))
    }

    /// Dynamic-property eval refs (the monitors behind the offer), so
    /// callers can subscribe this replica to a load feed.
    pub fn dynamic_refs(&self) -> Vec<(String, ObjRef)> {
        self.dynamic.lock().clone()
    }

    fn update_from(&self, m: &OfferMatch) {
        *self.properties.lock() = m.properties.clone();
        *self.dynamic.lock() = m.dynamic.clone();
    }
}

/// What a [`ReplicaSet::refresh`] changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshSummary {
    /// Replicas added this round.
    pub added: usize,
    /// Replicas evicted this round.
    pub evicted: usize,
    /// Live replicas after the refresh.
    pub total: usize,
}

/// Called with each replica entering/leaving the set.
pub type ReplicaHook = Box<dyn Fn(&Arc<Replica>) + Send + Sync>;

struct SetInner {
    handle: QueryHandle,
    replicas: RwLock<Vec<Arc<Replica>>>,
    policy: RwLock<Arc<dyn RoutingPolicy>>,
    metric_prefix: String,
    on_added: Mutex<Option<ReplicaHook>>,
    on_evicted: Mutex<Option<ReplicaHook>>,
    refresher_started: AtomicBool,
}

impl SetInner {
    fn counter(&self, stat: &str) -> adapta_telemetry::Counter {
        registry().counter(&format!("{}.{stat}", self.metric_prefix))
    }
}

/// A live, policy-routed view of every offer matching a trader query.
///
/// Cheaply cloneable; all clones share the same replicas, stats, and
/// policy.
#[derive(Clone)]
pub struct ReplicaSet {
    inner: Arc<SetInner>,
}

impl std::fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("replicas", &self.inner.replicas.read().len())
            .field("policy", &self.policy_name())
            .finish()
    }
}

impl ReplicaSet {
    /// Creates a set over `query` against `service`, starting empty
    /// with the [`RoundRobin`] policy. Call [`refresh`](Self::refresh)
    /// (or [`start_refresher`](Self::start_refresher)) to populate it.
    pub fn new(service: Arc<dyn TradingService>, query: Query) -> ReplicaSet {
        let metric_prefix = format!("balancer.{}", query.service_type);
        ReplicaSet {
            inner: Arc::new(SetInner {
                handle: QueryHandle::new(service, query),
                replicas: RwLock::new(Vec::new()),
                policy: RwLock::new(Arc::new(RoundRobin::new())),
                metric_prefix,
                on_added: Mutex::new(None),
                on_evicted: Mutex::new(None),
                refresher_started: AtomicBool::new(false),
            }),
        }
    }

    /// Construction-time policy selection (unlike
    /// [`set_policy`](Self::set_policy), not counted as a runtime
    /// policy switch). Unknown names keep the default.
    pub fn with_policy_named(self, name: &str) -> ReplicaSet {
        if let Some(p) = policy_named(name) {
            *self.inner.policy.write() = Arc::from(p);
        }
        self
    }

    // ---- lifecycle -------------------------------------------------------

    /// Re-runs the query and applies the delta: adds new offers as
    /// replicas, refreshes retained offers' property snapshots (stats
    /// survive), evicts withdrawn ones.
    ///
    /// # Errors
    ///
    /// Whatever the trader query returns; the set is unchanged on
    /// error.
    pub fn refresh(&self) -> adapta_trading::Result<RefreshSummary> {
        let delta = self.inner.handle.refresh()?;
        self.inner.counter("refreshes").incr();
        let mut added_replicas = Vec::new();
        let mut evicted_replicas = Vec::new();
        let summary = {
            let mut replicas = self.inner.replicas.write();
            for m in &delta.kept {
                let key = Replica::match_key(m);
                if let Some(r) = replicas.iter().find(|r| r.key() == key) {
                    r.update_from(m);
                }
            }
            for m in &delta.removed {
                let key = Replica::match_key(m);
                if let Some(pos) = replicas.iter().position(|r| r.key() == key) {
                    evicted_replicas.push(replicas.remove(pos));
                }
            }
            for m in &delta.added {
                let replica = Arc::new(Replica::from_match(m));
                replicas.push(replica.clone());
                added_replicas.push(replica);
            }
            RefreshSummary {
                added: added_replicas.len(),
                evicted: evicted_replicas.len(),
                total: replicas.len(),
            }
        };
        self.inner.counter("added").add(summary.added as u64);
        self.inner.counter("evictions").add(summary.evicted as u64);
        registry()
            .gauge(&format!("{}.replicas", self.inner.metric_prefix))
            .set(summary.total as i64);
        // Hooks run outside the replicas lock: they typically do orb
        // work (monitor subscribe/unsubscribe).
        if let Some(hook) = &*self.inner.on_added.lock() {
            for r in &added_replicas {
                hook(r);
            }
        }
        if let Some(hook) = &*self.inner.on_evicted.lock() {
            for r in &evicted_replicas {
                hook(r);
            }
        }
        Ok(summary)
    }

    /// Installs a hook called with every replica entering the set
    /// (including ones added by refreshes already in flight).
    pub fn on_added(&self, hook: ReplicaHook) {
        *self.inner.on_added.lock() = Some(hook);
    }

    /// Installs a hook called with every evicted replica.
    pub fn on_evicted(&self, hook: ReplicaHook) {
        *self.inner.on_evicted.lock() = Some(hook);
    }

    /// Spawns a background thread refreshing the set roughly every
    /// `interval`, jittered ±50% so many sets polling one trader don't
    /// stampede in phase. The thread exits when the last `ReplicaSet`
    /// clone is dropped; starting twice is a no-op.
    pub fn start_refresher(&self, interval: Duration) {
        if self.inner.refresher_started.swap(true, Ordering::SeqCst) {
            return;
        }
        let weak: Weak<SetInner> = Arc::downgrade(&self.inner);
        let name = format!("{}-refresher", self.inner.metric_prefix);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x6a69_7474);
                loop {
                    // Jitter in [0.5, 1.5) × interval, slept in short
                    // steps so the thread notices the set dropping.
                    let factor = 0.5 + rng.gen::<f64>();
                    let mut remaining = interval.mul_f64(factor);
                    let step = Duration::from_millis(10);
                    while !remaining.is_zero() {
                        if weak.strong_count() == 0 {
                            return;
                        }
                        let nap = remaining.min(step);
                        std::thread::sleep(nap);
                        remaining = remaining.saturating_sub(nap);
                    }
                    let Some(inner) = weak.upgrade() else { return };
                    let set = ReplicaSet { inner };
                    let _ = set.refresh();
                }
            })
            .expect("spawn replica-set refresher");
    }

    // ---- routing ---------------------------------------------------------

    /// Picks a replica with the current policy. `key` is the optional
    /// affinity key (see [`ConsistentHash`](crate::ConsistentHash)).
    pub fn pick(&self, key: Option<u64>) -> Option<Arc<Replica>> {
        self.pick_where(key, |_| true)
    }

    /// Picks a replica among those passing `filter` — callers exclude
    /// breaker-open and known-dead targets here, so the policy only
    /// ever sees admissible candidates.
    pub fn pick_where(
        &self,
        key: Option<u64>,
        filter: impl Fn(&Replica) -> bool,
    ) -> Option<Arc<Replica>> {
        let candidates: Vec<Arc<Replica>> = self
            .inner
            .replicas
            .read()
            .iter()
            .filter(|r| filter(r))
            .cloned()
            .collect();
        let policy = self.inner.policy.read().clone();
        let picked = candidates.get(policy.pick(&candidates, key)?)?.clone();
        self.record_pick(&picked);
        Some(picked)
    }

    /// Counts a pick of `replica` (stats + `balancer.<type>.picks*`
    /// metrics). [`pick_where`](Self::pick_where) calls this itself;
    /// callers that route around the policy (e.g. a breaker probe to a
    /// cooling-down replica) use it to keep the books straight.
    pub fn record_pick(&self, replica: &Arc<Replica>) {
        replica.stats().on_pick();
        self.inner.counter("picks").incr();
        self.inner
            .counter(&format!("picks.{}", replica.target().endpoint))
            .incr();
    }

    // ---- policy ----------------------------------------------------------

    /// Swaps the routing policy. In-flight calls are untouched: they
    /// already hold their replica, and stats/replicas are shared by
    /// every policy.
    pub fn set_policy(&self, policy: Box<dyn RoutingPolicy>) {
        *self.inner.policy.write() = Arc::from(policy);
        self.inner.counter("policy_switches").incr();
    }

    /// Swaps the policy by name (see
    /// [`policy_named`](crate::policy_named)); `false` if the name is
    /// unknown (the current policy stays).
    pub fn set_policy_named(&self, name: &str) -> bool {
        match policy_named(name) {
            Some(p) => {
                self.set_policy(p);
                true
            }
            None => false,
        }
    }

    /// The current policy's name.
    pub fn policy_name(&self) -> String {
        self.inner.policy.read().name().to_string()
    }

    // ---- introspection ---------------------------------------------------

    /// Snapshot of the live replicas.
    pub fn replicas(&self) -> Vec<Arc<Replica>> {
        self.inner.replicas.read().clone()
    }

    /// A live replica by key, if present.
    pub fn replica(&self, key: &str) -> Option<Arc<Replica>> {
        self.inner
            .replicas
            .read()
            .iter()
            .find(|r| r.key() == key)
            .cloned()
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.inner.replicas.read().len()
    }

    /// True when no replica matched (yet).
    pub fn is_empty(&self) -> bool {
        self.inner.replicas.read().is_empty()
    }

    /// The query this set materializes.
    pub fn query(&self) -> &Query {
        self.inner.handle.query()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapta_idl::TypeCode;
    use adapta_orb::Orb;
    use adapta_trading::{ExportRequest, PropDef, PropMode, ServiceTypeDef, Trader};

    fn setup() -> (Trader, ReplicaSet) {
        let orb = Orb::new("t-replicaset");
        let trader = Trader::new(&orb);
        trader
            .add_type(ServiceTypeDef::new("Hello").with_property(PropDef::new(
                "LoadAvg",
                TypeCode::Double,
                PropMode::Mandatory,
            )))
            .unwrap();
        let set = ReplicaSet::new(
            Arc::new(trader.clone()),
            Query::new("Hello").preference("min LoadAvg"),
        );
        (trader, set)
    }

    fn export(trader: &Trader, node: &str, load: f64) -> adapta_trading::OfferId {
        trader
            .export(
                ExportRequest::new(
                    "Hello",
                    ObjRef::new(format!("inproc://{node}"), "svc", "Hello"),
                )
                .with_property("LoadAvg", Value::from(load)),
            )
            .unwrap()
    }

    #[test]
    fn refresh_applies_deltas_and_keeps_stats() {
        let (trader, set) = setup();
        let a = export(&trader, "a", 1.0);
        export(&trader, "b", 2.0);
        let s = set.refresh().unwrap();
        assert_eq!((s.added, s.evicted, s.total), (2, 0, 2));

        // Accumulate stats on a replica, then refresh: stats survive.
        let r = set.pick(None).unwrap();
        r.stats().on_start();
        r.stats().on_complete(Duration::from_millis(3), true);
        let key = r.key().to_string();
        let s = set.refresh().unwrap();
        assert_eq!((s.added, s.evicted, s.total), (0, 0, 2));
        let same = set.replica(&key).unwrap();
        assert_eq!(same.stats().completed(), 1);

        trader.withdraw(&a).unwrap();
        let s = set.refresh().unwrap();
        assert_eq!((s.added, s.evicted, s.total), (0, 1, 1));
    }

    #[test]
    fn hooks_fire_for_added_and_evicted_replicas() {
        let (trader, set) = setup();
        let added = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let evicted = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let (a2, e2) = (added.clone(), evicted.clone());
        set.on_added(Box::new(move |_| {
            a2.fetch_add(1, Ordering::SeqCst);
        }));
        set.on_evicted(Box::new(move |_| {
            e2.fetch_add(1, Ordering::SeqCst);
        }));
        let id = export(&trader, "a", 1.0);
        set.refresh().unwrap();
        trader.withdraw(&id).unwrap();
        set.refresh().unwrap();
        assert_eq!(added.load(Ordering::SeqCst), 1);
        assert_eq!(evicted.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn policy_swap_by_name() {
        let (_trader, set) = setup();
        assert_eq!(set.policy_name(), "round_robin");
        assert!(set.set_policy_named("p2c_ewma"));
        assert_eq!(set.policy_name(), "p2c_ewma");
        assert!(!set.set_policy_named("nope"));
        assert_eq!(set.policy_name(), "p2c_ewma");
    }

    #[test]
    fn background_refresher_tracks_the_trader() {
        let (trader, set) = setup();
        set.start_refresher(Duration::from_millis(20));
        set.start_refresher(Duration::from_millis(20)); // no-op
        export(&trader, "a", 1.0);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while set.is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(set.len(), 1, "refresher never picked up the export");
    }

    #[test]
    fn pick_where_filters_candidates() {
        let (trader, set) = setup();
        export(&trader, "a", 1.0);
        export(&trader, "b", 2.0);
        set.refresh().unwrap();
        let b_only = set
            .pick_where(None, |r| r.target().endpoint.ends_with("b"))
            .unwrap();
        assert_eq!(b_only.target().endpoint, "inproc://b");
        assert!(set.pick_where(None, |_| false).is_none());
    }
}
