//! Replica-set management and adaptive request routing.
//!
//! The paper's evaluation is *client-driven load sharing*: clients
//! re-select servers as monitored load shifts. This crate generalizes
//! that from one-shot selection to continuous routing:
//!
//! * a [`ReplicaSet`] materializes a trader query into a live set of
//!   candidate offers — refreshed on a jittered interval, with
//!   delta-based add/evict so per-replica state survives refreshes;
//! * every replica carries [`ReplicaStats`] — EWMA latency, in-flight
//!   count, error rate, and the last monitor-pushed load value — fed by
//!   call outcomes and monitor events;
//! * a pluggable [`RoutingPolicy`] picks the replica for each call:
//!   [`RoundRobin`], [`LeastInflight`], [`P2cEwma`]
//!   (power-of-two-choices over EWMA latency), [`WeightedProperty`]
//!   (weights from a monitored dynamic property), and
//!   [`ConsistentHash`] (session affinity).
//!
//! `adapta-core`'s `SmartProxy` builds on this to route every
//! invocation through the policy instead of a single bound offer.
//!
//! ```
//! use std::sync::Arc;
//! use adapta_balancer::ReplicaSet;
//! use adapta_trading::{Trader, ServiceTypeDef, PropDef, PropMode, ExportRequest, Query};
//! use adapta_idl::{TypeCode, Value, ObjRefData};
//! use adapta_orb::Orb;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let orb = Orb::new("balancer-doc");
//! let trader = Trader::new(&orb);
//! trader.add_type(
//!     ServiceTypeDef::new("Hello")
//!         .with_property(PropDef::new("LoadAvg", TypeCode::Double, PropMode::Mandatory)),
//! )?;
//! trader.export(
//!     ExportRequest::new("Hello", ObjRefData::new("inproc://a", "svc", "Hello"))
//!         .with_property("LoadAvg", Value::from(0.5)),
//! )?;
//!
//! let set = ReplicaSet::new(Arc::new(trader), Query::new("Hello"));
//! set.refresh()?;
//! set.set_policy_named("p2c_ewma");
//! let replica = set.pick(None).expect("one replica");
//! assert_eq!(replica.target().endpoint, "inproc://a");
//! # Ok(())
//! # }
//! ```

mod policy;
mod replica_set;
mod stats;

pub use policy::{
    policy_named, ConsistentHash, LeastInflight, P2cEwma, RoundRobin, RoutingPolicy,
    WeightedProperty,
};
pub use replica_set::{RefreshSummary, Replica, ReplicaHook, ReplicaSet};
pub use stats::ReplicaStats;
