//! Pluggable routing policies.
//!
//! A [`RoutingPolicy`] picks one replica out of a candidate slice on
//! every call. Policies are stateless with respect to the replica set
//! (the set changes under them between picks) but may keep their own
//! cursor/RNG state. All built-ins are cheap enough to sit on the
//! per-invocation hot path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::replica_set::Replica;

/// Picks one replica from the candidate slice.
///
/// `replicas` is the already-filtered candidate list (callers remove
/// breaker-open and dead targets before the policy sees them);
/// `key` is an optional affinity key (session id hash) that only
/// affinity-aware policies use. Returns an index into `replicas`, or
/// `None` when the slice is empty.
pub trait RoutingPolicy: Send + Sync {
    /// Stable policy name (what [`policy_named`] parses).
    fn name(&self) -> &str;

    /// Picks an index into `replicas`.
    fn pick(&self, replicas: &[Arc<Replica>], key: Option<u64>) -> Option<usize>;
}

/// FNV-1a — cheap, dependency-free, stable across runs.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

// ---- round robin ---------------------------------------------------------

/// Strict rotation over the candidate list.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// Creates a round-robin policy starting at the first replica.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &str {
        "round_robin"
    }

    fn pick(&self, replicas: &[Arc<Replica>], _key: Option<u64>) -> Option<usize> {
        if replicas.is_empty() {
            return None;
        }
        Some(self.next.fetch_add(1, Ordering::Relaxed) % replicas.len())
    }
}

// ---- least in-flight -----------------------------------------------------

/// Picks the replica with the fewest calls in flight, breaking ties by
/// EWMA-latency score.
#[derive(Debug, Default)]
pub struct LeastInflight;

impl LeastInflight {
    /// Creates a least-in-flight policy.
    pub fn new() -> LeastInflight {
        LeastInflight
    }
}

impl RoutingPolicy for LeastInflight {
    fn name(&self) -> &str {
        "least_inflight"
    }

    fn pick(&self, replicas: &[Arc<Replica>], _key: Option<u64>) -> Option<usize> {
        (0..replicas.len()).min_by(|&a, &b| {
            let (ra, rb) = (replicas[a].stats(), replicas[b].stats());
            (ra.inflight(), ra.score())
                .partial_cmp(&(rb.inflight(), rb.score()))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

// ---- power of two choices over EWMA --------------------------------------

/// Power-of-two-choices: sample two distinct replicas uniformly, route
/// to the one with the lower `EWMA latency × (inflight + 1)` score.
/// Near-optimal load distribution with O(1) work and no global scan.
#[derive(Debug)]
pub struct P2cEwma {
    rng: Mutex<StdRng>,
}

impl Default for P2cEwma {
    fn default() -> Self {
        P2cEwma::new()
    }
}

impl P2cEwma {
    /// Creates a P2C policy with a fixed seed (deterministic sampling
    /// order; scores still depend on live stats).
    pub fn new() -> P2cEwma {
        P2cEwma {
            rng: Mutex::new(StdRng::seed_from_u64(0x7032_6332)),
        }
    }
}

impl RoutingPolicy for P2cEwma {
    fn name(&self) -> &str {
        "p2c_ewma"
    }

    fn pick(&self, replicas: &[Arc<Replica>], _key: Option<u64>) -> Option<usize> {
        match replicas.len() {
            0 => None,
            1 => Some(0),
            n => {
                let (a, b) = {
                    let mut rng = self.rng.lock();
                    let a = rng.gen_range(0..n);
                    let mut b = rng.gen_range(0..n - 1);
                    if b >= a {
                        b += 1;
                    }
                    (a, b)
                };
                if replicas[a].stats().score() <= replicas[b].stats().score() {
                    Some(a)
                } else {
                    Some(b)
                }
            }
        }
    }
}

// ---- weighted by monitored property --------------------------------------

/// Weighted-random selection with weights derived from a monitored
/// load property — the paper's load-sharing example generalized. The
/// weight is `1 / (1 + load)` where `load` is the last monitor-pushed
/// value ([`ReplicaStats::record_load`](crate::ReplicaStats::record_load)),
/// falling back to the property value snapshotted from the offer.
/// Replicas with no load signal at all get weight 1.0 (as if idle).
#[derive(Debug)]
pub struct WeightedProperty {
    property: String,
    rng: Mutex<StdRng>,
    name: String,
}

impl WeightedProperty {
    /// Creates a weighted policy over `property` (e.g. `"LoadAvg"`).
    pub fn new(property: impl Into<String>) -> WeightedProperty {
        let property = property.into();
        WeightedProperty {
            name: format!("weighted_property:{property}"),
            rng: Mutex::new(StdRng::seed_from_u64(0x7765_6967)),
            property,
        }
    }

    fn weight(&self, replica: &Replica) -> f64 {
        let load = replica
            .stats()
            .load()
            .or_else(|| replica.property_f64(&self.property))
            .unwrap_or(0.0);
        1.0 / (1.0 + load.max(0.0))
    }
}

impl RoutingPolicy for WeightedProperty {
    fn name(&self) -> &str {
        &self.name
    }

    fn pick(&self, replicas: &[Arc<Replica>], _key: Option<u64>) -> Option<usize> {
        if replicas.is_empty() {
            return None;
        }
        let weights: Vec<f64> = replicas.iter().map(|r| self.weight(r)).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Some(0);
        }
        let mut point = { self.rng.lock().gen::<f64>() } * total;
        for (i, w) in weights.iter().enumerate() {
            point -= w;
            if point <= 0.0 {
                return Some(i);
            }
        }
        Some(replicas.len() - 1)
    }
}

// ---- consistent hash -----------------------------------------------------

/// Consistent hashing for session affinity to stateful replicas: the
/// same key lands on the same replica as long as it stays in the set,
/// and when the set changes only ~1/n of keys move. Keyless calls fall
/// back to spreading over the ring with an internal counter.
#[derive(Debug)]
pub struct ConsistentHash {
    vnodes: usize,
    fallback: AtomicU64,
}

impl Default for ConsistentHash {
    fn default() -> Self {
        ConsistentHash::new(32)
    }
}

impl ConsistentHash {
    /// Creates a ring with `vnodes` virtual nodes per replica (more
    /// vnodes → smoother key distribution, slower pick).
    pub fn new(vnodes: usize) -> ConsistentHash {
        ConsistentHash {
            vnodes: vnodes.max(1),
            fallback: AtomicU64::new(0),
        }
    }
}

impl RoutingPolicy for ConsistentHash {
    fn name(&self) -> &str {
        "consistent_hash"
    }

    fn pick(&self, replicas: &[Arc<Replica>], key: Option<u64>) -> Option<usize> {
        if replicas.is_empty() {
            return None;
        }
        // Hash the key onto the ring — raw keys (session ids, user
        // ids) are typically clustered, and an unhashed point would
        // land them all on the same arc.
        let point = fnv1a(
            &key.unwrap_or_else(|| self.fallback.fetch_add(1, Ordering::Relaxed))
                .to_le_bytes(),
        );
        // The ring is rebuilt per pick: replica sets are small (tens,
        // not thousands) and the set mutates underneath us between
        // picks, so caching would need generation tracking for little
        // gain at this scale.
        let mut best: Option<(u64, usize)> = None;
        let mut lowest: Option<(u64, usize)> = None;
        for (i, replica) in replicas.iter().enumerate() {
            for v in 0..self.vnodes {
                let mut seed = replica.key().as_bytes().to_vec();
                seed.extend_from_slice(&(v as u64).to_le_bytes());
                let h = fnv1a(&seed);
                if lowest.is_none_or(|(lo, _)| h < lo) {
                    lowest = Some((h, i));
                }
                if h >= point && best.is_none_or(|(b, _)| h < b) {
                    best = Some((h, i));
                }
            }
        }
        // Successor of `point` on the ring, wrapping to the lowest hash.
        best.or(lowest).map(|(_, i)| i)
    }
}

// ---- parsing -------------------------------------------------------------

/// Builds a policy from its name: `round_robin`, `least_inflight`,
/// `p2c_ewma`, `consistent_hash`, or `weighted_property:<Prop>`
/// (`weighted_property` alone defaults to `LoadAvg`). Returns `None`
/// for unknown names.
pub fn policy_named(name: &str) -> Option<Box<dyn RoutingPolicy>> {
    match name {
        "round_robin" => Some(Box::new(RoundRobin::new())),
        "least_inflight" => Some(Box::new(LeastInflight::new())),
        "p2c_ewma" => Some(Box::new(P2cEwma::new())),
        "consistent_hash" => Some(Box::new(ConsistentHash::default())),
        "weighted_property" => Some(Box::new(WeightedProperty::new("LoadAvg"))),
        _ => name
            .strip_prefix("weighted_property:")
            .filter(|p| !p.is_empty())
            .map(|p| Box::new(WeightedProperty::new(p)) as Box<dyn RoutingPolicy>),
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use adapta_idl::Value;
    use adapta_orb::ObjRef;

    fn replica(name: &str) -> Arc<Replica> {
        Arc::new(Replica::from_parts(
            format!("offer-{name}"),
            ObjRef::new(format!("inproc://{name}"), "svc", "Hello"),
            vec![("LoadAvg".into(), Value::from(1.0))],
            vec![],
        ))
    }

    fn set(n: usize) -> Vec<Arc<Replica>> {
        (0..n).map(|i| replica(&format!("r{i}"))).collect()
    }

    #[test]
    fn round_robin_rotates() {
        let replicas = set(3);
        let rr = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(&replicas, None).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert!(rr.pick(&[], None).is_none());
    }

    #[test]
    fn least_inflight_avoids_busy_replicas() {
        let replicas = set(3);
        replicas[0].stats().on_start();
        replicas[0].stats().on_start();
        replicas[1].stats().on_start();
        let li = LeastInflight::new();
        assert_eq!(li.pick(&replicas, None), Some(2));
    }

    #[test]
    fn p2c_prefers_the_faster_replica() {
        let replicas = set(2);
        for _ in 0..20 {
            replicas[0].stats().on_start();
            replicas[0]
                .stats()
                .on_complete(Duration::from_millis(1), true);
            replicas[1].stats().on_start();
            replicas[1]
                .stats()
                .on_complete(Duration::from_millis(50), true);
        }
        let p2c = P2cEwma::new();
        let fast = (0..200)
            .filter(|_| p2c.pick(&replicas, None) == Some(0))
            .count();
        // With 2 replicas P2C always samples both, so the faster one
        // wins every pick while the scores stand still.
        assert_eq!(fast, 200);
    }

    #[test]
    fn weighted_property_follows_the_load_signal() {
        let replicas = set(2);
        replicas[0].stats().record_load(0.0);
        replicas[1].stats().record_load(99.0);
        let wp = WeightedProperty::new("LoadAvg");
        let to_idle = (0..400)
            .filter(|_| wp.pick(&replicas, None) == Some(0))
            .count();
        assert!(to_idle > 340, "idle replica won only {to_idle}/400 picks");
    }

    #[test]
    fn weighted_property_falls_back_to_the_offer_property() {
        let hot = Arc::new(Replica::from_parts(
            "offer-hot".to_string(),
            ObjRef::new("inproc://hot", "svc", "Hello"),
            vec![("LoadAvg".into(), Value::from(99.0))],
            vec![],
        ));
        let idle = replica("idle"); // LoadAvg 1.0
        let wp = WeightedProperty::new("LoadAvg");
        let replicas = vec![hot, idle];
        let to_idle = (0..400)
            .filter(|_| wp.pick(&replicas, None) == Some(1))
            .count();
        assert!(to_idle > 300, "idle replica won only {to_idle}/400 picks");
    }

    #[test]
    fn consistent_hash_is_sticky_and_mostly_stable_under_churn() {
        let replicas = set(5);
        let ch = ConsistentHash::default();
        // Same key → same replica, every time.
        for key in 0..50u64 {
            let first = ch.pick(&replicas, Some(key));
            for _ in 0..5 {
                assert_eq!(ch.pick(&replicas, Some(key)), first);
            }
        }
        // Removing one replica moves only a minority of keys.
        let shrunk: Vec<Arc<Replica>> = replicas[..4].to_vec();
        let moved = (0..200u64)
            .filter(|&k| {
                let before = ch.pick(&replicas, Some(k)).unwrap();
                let after = ch.pick(&shrunk, Some(k)).unwrap();
                replicas[before].key() != shrunk[after].key()
            })
            .count();
        assert!(moved < 100, "churn moved {moved}/200 keys");
    }

    #[test]
    fn policy_named_parses_all_builtins() {
        for name in [
            "round_robin",
            "least_inflight",
            "p2c_ewma",
            "consistent_hash",
            "weighted_property",
        ] {
            assert!(policy_named(name).is_some(), "{name}");
        }
        assert_eq!(
            policy_named("weighted_property:Memory").unwrap().name(),
            "weighted_property:Memory"
        );
        assert!(policy_named("weighted_property:").is_none());
        assert!(policy_named("definitely_not_a_policy").is_none());
    }
}
