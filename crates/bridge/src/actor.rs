//! The script actor: one interpreter, one thread, many callers.

use std::fmt;
use std::sync::Arc;

use adapta_idl::Value as Wire;
use adapta_script::{Interpreter, RuaError, Value as Script};
use crossbeam::channel::{bounded, unbounded, Sender};

use crate::convert::{from_wire, to_wire};

/// Errors surfaced by [`ScriptActor`] calls.
#[derive(Debug, Clone, PartialEq)]
pub enum ActorError {
    /// The script raised an error (or failed to parse).
    Script(String),
    /// The script hit a sandbox resource limit (step budget, memory
    /// cap, call depth or wall-clock deadline). Kept distinct from
    /// [`Script`](Self::Script) so hosts can treat it as evidence of
    /// hostile or runaway code rather than an ordinary bug.
    Resource(String),
    /// The host refused the operation before running any script
    /// (admission control: install quotas and the like).
    Rejected(String),
    /// The actor thread is gone.
    Disconnected,
    /// A stored function handle was not found (already dropped?).
    UnknownFunction(u64),
}

impl ActorError {
    /// True when the script was stopped by the sandbox.
    pub fn is_resource_limit(&self) -> bool {
        matches!(self, ActorError::Resource(_))
    }
}

impl fmt::Display for ActorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActorError::Script(m) | ActorError::Resource(m) | ActorError::Rejected(m) => {
                write!(f, "{m}")
            }
            ActorError::Disconnected => write!(f, "script actor is gone"),
            ActorError::UnknownFunction(id) => write!(f, "unknown stored function #{id}"),
        }
    }
}

impl std::error::Error for ActorError {}

impl From<RuaError> for ActorError {
    fn from(e: RuaError) -> Self {
        if e.is_resource_limit() {
            ActorError::Resource(e.to_string())
        } else {
            ActorError::Script(e.to_string())
        }
    }
}

type Job = Box<dyn FnOnce(&mut Interpreter) + Send>;

/// A handle to a function stored inside the actor's interpreter.
///
/// The function value itself (an `Rc` closure) never leaves the actor
/// thread; callers hold this opaque id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncHandle(u64);

/// A dedicated thread owning one [`Interpreter`], accepting work over a
/// channel.
///
/// This is the mechanism that lets the single-threaded scripting state
/// serve multi-threaded middleware: servants, monitors and smart proxies
/// hold a cheap `ScriptActor` clone and submit closures; remotely
/// shipped code is compiled once ([`store_function`]) and invoked many
/// times ([`call`]) with wire-value arguments.
///
/// ```
/// use adapta_bridge::ScriptActor;
/// use adapta_idl::Value;
///
/// let actor = ScriptActor::spawn("demo", |_| {});
/// let f = actor.store_function("function(a, b) return a + b end").unwrap();
/// let out = actor.call(f, vec![Value::from(20i64), Value::from(22i64)]).unwrap();
/// assert_eq!(out, vec![Value::from(42i64)]);
/// ```
///
/// [`store_function`]: ScriptActor::store_function
/// [`call`]: ScriptActor::call
#[derive(Clone)]
pub struct ScriptActor {
    tx: Sender<Job>,
    name: Arc<str>,
}

impl fmt::Debug for ScriptActor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScriptActor({})", self.name)
    }
}

impl ScriptActor {
    /// Spawns the actor thread. `setup` runs first on the fresh
    /// interpreter (install natives, hooks, globals).
    pub fn spawn(name: &str, setup: impl FnOnce(&mut Interpreter) + Send + 'static) -> ScriptActor {
        let (tx, rx) = unbounded::<Job>();
        let thread_name = format!("rua-{name}");
        std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let mut interp = Interpreter::new();
                setup(&mut interp);
                // Registry of stored functions, indexed by handle.
                interp.eval("__stored = {}").expect("init stored table");
                while let Ok(job) = rx.recv() {
                    job(&mut interp);
                }
            })
            .expect("spawn script actor");
        ScriptActor {
            tx,
            name: Arc::from(name),
        }
    }

    /// Runs `f` on the actor's interpreter and returns its result.
    ///
    /// This is the primitive everything else builds on. Blocks until the
    /// actor executes the closure.
    ///
    /// # Errors
    ///
    /// [`ActorError::Disconnected`] if the actor thread has exited.
    pub fn with<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut Interpreter) -> R + Send + 'static,
    ) -> Result<R, ActorError> {
        let (reply_tx, reply_rx) = bounded::<R>(1);
        let job: Job = Box::new(move |interp| {
            let _ = reply_tx.send(f(interp));
        });
        self.tx.send(job).map_err(|_| ActorError::Disconnected)?;
        reply_rx.recv().map_err(|_| ActorError::Disconnected)
    }

    /// Evaluates a chunk; returns its `return` values as wire values.
    ///
    /// # Errors
    ///
    /// Script errors or actor disconnection.
    pub fn eval(&self, source: &str) -> Result<Vec<Wire>, ActorError> {
        let source = source.to_owned();
        self.with(move |interp| {
            interp
                .eval(&source)
                .map(|values| values.iter().map(to_wire).collect::<Vec<_>>())
                .map_err(ActorError::from)
        })?
    }

    /// Compiles source that must yield a function (either a
    /// `function(...) … end` literal or a chunk returning one) and
    /// stores it in the actor; returns a handle for later calls.
    ///
    /// # Errors
    ///
    /// Script errors or actor disconnection.
    pub fn store_function(&self, source: &str) -> Result<FuncHandle, ActorError> {
        let source = source.to_owned();
        self.with(move |interp| -> Result<FuncHandle, ActorError> {
            let f = interp.compile_function(&source)?;
            Ok(FuncHandle(store(interp, f)))
        })?
    }

    /// Stores an already-built script value from inside a
    /// [`with`](Self::with) closure (hosts use this to persist tables or
    /// natively-constructed functions across calls).
    pub fn stored_put(interp: &mut Interpreter, v: Script) -> FuncHandle {
        FuncHandle(store(interp, v))
    }

    /// Fetches a stored value from inside a [`with`](Self::with) closure.
    pub fn stored_get(interp: &mut Interpreter, f: FuncHandle) -> Option<Script> {
        fetch(interp, f.0)
    }

    /// Calls a stored function with wire-value arguments.
    ///
    /// # Errors
    ///
    /// Unknown handle, script errors, or actor disconnection.
    pub fn call(&self, f: FuncHandle, args: Vec<Wire>) -> Result<Vec<Wire>, ActorError> {
        self.with(move |interp| -> Result<Vec<Wire>, ActorError> {
            let func = fetch(interp, f.0).ok_or(ActorError::UnknownFunction(f.0))?;
            let args: Vec<Script> = args.iter().map(from_wire).collect();
            let out = interp.call(&func, args)?;
            Ok(out.iter().map(to_wire).collect())
        })?
    }

    /// Calls a stored function with *script* arguments produced by a
    /// builder closure (lets hosts pass facade tables with natives).
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call).
    pub fn call_with(
        &self,
        f: FuncHandle,
        build_args: impl FnOnce(&mut Interpreter) -> Vec<Script> + Send + 'static,
    ) -> Result<Vec<Wire>, ActorError> {
        self.with(move |interp| -> Result<Vec<Wire>, ActorError> {
            let func = fetch(interp, f.0).ok_or(ActorError::UnknownFunction(f.0))?;
            let args = build_args(interp);
            let out = interp.call(&func, args)?;
            Ok(out.iter().map(to_wire).collect())
        })?
    }

    /// Drops a stored function.
    ///
    /// # Errors
    ///
    /// Actor disconnection.
    pub fn drop_function(&self, f: FuncHandle) -> Result<(), ActorError> {
        self.with(move |interp| {
            let stored = interp.global("__stored");
            if let Some(t) = stored.as_table() {
                let _ = t.borrow_mut().set(Script::from(f.0 as f64), Script::Nil);
            }
        })
    }
}

fn store(interp: &mut Interpreter, v: Script) -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let stored = interp.global("__stored");
    let t = stored.as_table().expect("__stored registry table");
    t.borrow_mut()
        .set(Script::from(id as f64), v)
        .expect("numeric key");
    id
}

fn fetch(interp: &mut Interpreter, id: u64) -> Option<Script> {
    let stored = interp.global("__stored");
    let t = stored.as_table()?;
    let v = t.borrow().get(&Script::from(id as f64));
    match v {
        Script::Nil => None,
        other => Some(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_round_trips_values() {
        let actor = ScriptActor::spawn("t1", |_| {});
        let out = actor.eval("return 1 + 1, 'two', {3, 4}").unwrap();
        assert_eq!(out[0], Wire::Long(2));
        assert_eq!(out[1], Wire::Str("two".into()));
        assert_eq!(out[2], Wire::Seq(vec![Wire::Long(3), Wire::Long(4)]));
    }

    #[test]
    fn setup_installs_natives() {
        let actor = ScriptActor::spawn("t2", |interp| {
            interp.register("answer", |_, _| Ok(vec![Script::Num(42.0)]));
        });
        assert_eq!(actor.eval("return answer()").unwrap(), vec![Wire::Long(42)]);
    }

    #[test]
    fn stored_functions_keep_state() {
        let actor = ScriptActor::spawn("t3", |_| {});
        let f = actor
            .store_function("local n = 0\nreturn function() n = n + 1 return n end")
            .unwrap();
        assert_eq!(actor.call(f, vec![]).unwrap(), vec![Wire::Long(1)]);
        assert_eq!(actor.call(f, vec![]).unwrap(), vec![Wire::Long(2)]);
    }

    #[test]
    fn dropped_functions_are_unknown() {
        let actor = ScriptActor::spawn("t4", |_| {});
        let f = actor.store_function("function() return 1 end").unwrap();
        actor.drop_function(f).unwrap();
        assert_eq!(
            actor.call(f, vec![]),
            Err(ActorError::UnknownFunction(match f {
                FuncHandle(id) => id,
            }))
        );
    }

    #[test]
    fn script_errors_are_reported_not_fatal() {
        let actor = ScriptActor::spawn("t5", |_| {});
        let err = actor.eval("error('boom')").unwrap_err();
        assert!(matches!(err, ActorError::Script(m) if m.contains("boom")));
        // The actor survives.
        assert_eq!(actor.eval("return 1").unwrap(), vec![Wire::Long(1)]);
    }

    #[test]
    fn parse_errors_in_store_function() {
        let actor = ScriptActor::spawn("t6", |_| {});
        assert!(actor.store_function("function(").is_err());
        assert!(actor.store_function("return 42").is_err());
    }

    #[test]
    fn concurrent_callers_are_serialised() {
        let actor = ScriptActor::spawn("t7", |_| {});
        actor.eval("counter = 0").unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = actor.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    a.eval("counter = counter + 1").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(actor.eval("return counter").unwrap(), vec![Wire::Long(400)]);
    }

    #[test]
    fn globals_persist_across_eval_calls() {
        let actor = ScriptActor::spawn("t8", |_| {});
        actor.eval("state = {count = 1}").unwrap();
        assert_eq!(
            actor.eval("return state.count").unwrap(),
            vec![Wire::Long(1)]
        );
    }

    #[test]
    fn call_with_builds_script_arguments() {
        let actor = ScriptActor::spawn("t9", |_| {});
        let f = actor
            .store_function("function(t) return t.x + t.y end")
            .unwrap();
        let out = actor
            .call_with(f, |_| {
                let mut t = adapta_script::Table::new();
                t.set_str("x", Script::Num(1.0));
                t.set_str("y", Script::Num(2.0));
                vec![Script::Table(std::rc::Rc::new(std::cell::RefCell::new(t)))]
            })
            .unwrap();
        assert_eq!(out, vec![Wire::Long(3)]);
    }
}
