//! Bridges the [Rua](adapta_script) interpreter into the `adapta`
//! distributed stack.
//!
//! Two pieces:
//!
//! * [`from_wire`]/[`to_wire`] — lossless-where-possible mapping between script values
//!   and wire [`Value`](adapta_idl::Value)s (the LuaCorba parameter
//!   mapping);
//! * [`ScriptActor`] — a dedicated thread owning one interpreter (a
//!   "script state"), serving closures sent over a channel. This is how
//!   a single-threaded interpreter can back thread-safe servants,
//!   monitors and smart proxies — the analogue of the LuaCorba adapter
//!   that funnels all DSI upcalls into one Lua state.

mod actor;
mod convert;

pub use actor::{ActorError, FuncHandle, ScriptActor};
pub use convert::{from_wire, to_wire};
