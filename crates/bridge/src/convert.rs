//! Value conversion between the scripting language and the wire.
//!
//! The mapping mirrors LuaCorba's:
//!
//! | wire ([`adapta_idl::Value`]) | script ([`adapta_script::Value`]) |
//! |---|---|
//! | `Null` | `nil` |
//! | `Bool` | boolean |
//! | `Long`/`Double` | number |
//! | `Str` | string |
//! | `Seq` | table with keys `1..n` |
//! | `Map` | table with string keys |
//! | `ObjRef` | table `{__ref = "adapta-ref:…"}` (hosts add methods) |
//! | `Bytes` | string (lossy UTF-8) — payloads are treated as opaque |
//!
//! Script→wire: numbers become `Long` when integral (so `t[1]`-style
//! indices survive), tables become `Seq` when they are pure arrays and
//! `Map` otherwise, tables carrying `__ref` become object references,
//! and functions cannot cross (they are shipped as *source code
//! strings* instead — the remote-evaluation idiom).

use adapta_idl::{ObjRefData, Value as Wire};
use adapta_script::{Table, Value as Script};

/// Converts a script value to a wire value.
///
/// Functions convert to `Null` (code travels as source text, never as
/// closures); table keys are stringified.
pub fn to_wire(v: &Script) -> Wire {
    match v {
        Script::Nil => Wire::Null,
        Script::Bool(b) => Wire::Bool(*b),
        Script::Num(n) => {
            if n.fract() == 0.0 && n.is_finite() && n.abs() < 9e15 {
                Wire::Long(*n as i64)
            } else {
                Wire::Double(*n)
            }
        }
        Script::Str(s) => Wire::Str(s.to_string()),
        Script::Table(t) => {
            let table = t.borrow();
            // Object-reference wrapper?
            if let Script::Str(uri) = table.get_str("__ref") {
                if let Some(data) = ObjRefData::from_uri(&uri) {
                    return Wire::ObjRef(data);
                }
            }
            let len = table.len();
            if len > 0 && table.total_entries() == len {
                // Pure array part → sequence.
                let items = (1..=len)
                    .map(|i| to_wire(&table.get(&Script::from(i as i64))))
                    .collect();
                Wire::Seq(items)
            } else if table.is_empty() {
                Wire::Seq(Vec::new())
            } else {
                let fields = table
                    .iter()
                    .map(|(k, v)| (k.to_display_string(), to_wire(&v)))
                    .collect();
                Wire::Map(fields)
            }
        }
        Script::Function(_) | Script::Native(_) => Wire::Null,
    }
}

/// Converts a wire value to a script value.
///
/// Object references become `{__ref = "<uri>", __type = "<interface>"}`
/// tables; hosts that can invoke remote objects (e.g. `adapta-core`)
/// install callable methods on such tables after conversion.
pub fn from_wire(v: &Wire) -> Script {
    match v {
        Wire::Null => Script::Nil,
        Wire::Bool(b) => Script::Bool(*b),
        Wire::Long(n) => Script::Num(*n as f64),
        Wire::Double(d) => Script::Num(*d),
        Wire::Str(s) => Script::str(s),
        Wire::Bytes(b) => Script::str(String::from_utf8_lossy(b)),
        Wire::Seq(items) => {
            let mut t = Table::new();
            for item in items {
                t.push(from_wire(item));
            }
            Script::Table(std::rc::Rc::new(std::cell::RefCell::new(t)))
        }
        Wire::Map(fields) => {
            let mut t = Table::new();
            for (k, v) in fields {
                t.set_str(k, from_wire(v));
            }
            Script::Table(std::rc::Rc::new(std::cell::RefCell::new(t)))
        }
        Wire::ObjRef(data) => {
            let mut t = Table::new();
            t.set_str("__ref", Script::str(data.to_uri()));
            t.set_str("__type", Script::str(&data.type_id));
            Script::Table(std::rc::Rc::new(std::cell::RefCell::new(t)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for wire in [
            Wire::Null,
            Wire::Bool(true),
            Wire::Long(42),
            Wire::Double(2.5),
            Wire::Str("hi".into()),
        ] {
            assert_eq!(to_wire(&from_wire(&wire)), wire);
        }
    }

    #[test]
    fn integral_doubles_become_longs() {
        assert_eq!(to_wire(&Script::Num(3.0)), Wire::Long(3));
        assert_eq!(to_wire(&Script::Num(3.5)), Wire::Double(3.5));
        // Long → number → Long survives.
        assert_eq!(to_wire(&from_wire(&Wire::Long(7))), Wire::Long(7));
        // Integral Double degrades to Long (documented, harmless for
        // dynamic typing).
        assert_eq!(to_wire(&from_wire(&Wire::Double(7.0))), Wire::Long(7));
    }

    #[test]
    fn sequences_round_trip() {
        let wire = Wire::Seq(vec![Wire::Long(1), Wire::Str("x".into())]);
        assert_eq!(to_wire(&from_wire(&wire)), wire);
        assert_eq!(to_wire(&from_wire(&Wire::Seq(vec![]))), Wire::Seq(vec![]));
    }

    #[test]
    fn maps_round_trip() {
        let wire = Wire::map([("a", Wire::Long(1)), ("b", Wire::Str("x".into()))]);
        let back = to_wire(&from_wire(&wire));
        // Order may normalise (tables sort keys); compare as sets.
        let Wire::Map(mut fields) = back else {
            panic!()
        };
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            fields,
            vec![
                ("a".to_owned(), Wire::Long(1)),
                ("b".to_owned(), Wire::Str("x".into()))
            ]
        );
    }

    #[test]
    fn objrefs_round_trip_via_ref_tables() {
        let data = ObjRefData::new("inproc://n", "mon-1", "EventMonitor");
        let script = from_wire(&Wire::ObjRef(data.clone()));
        let t = script.as_table().unwrap().borrow();
        assert_eq!(t.get_str("__type"), Script::str("EventMonitor"));
        drop(t);
        assert_eq!(to_wire(&script), Wire::ObjRef(data));
    }

    #[test]
    fn functions_do_not_cross() {
        let mut interp = adapta_script::Interpreter::new();
        let f = interp.compile("return 1").unwrap();
        assert_eq!(to_wire(&f), Wire::Null);
    }

    #[test]
    fn bytes_become_strings() {
        let wire = Wire::Bytes(bytes::Bytes::from_static(b"abc"));
        assert_eq!(from_wire(&wire), Script::str("abc"));
    }

    #[test]
    fn mixed_tables_become_maps() {
        let mut t = Table::new();
        t.push(Script::from(1i64));
        t.set_str("k", Script::from(2i64));
        let script = Script::Table(std::rc::Rc::new(std::cell::RefCell::new(t)));
        let wire = to_wire(&script);
        assert!(matches!(wire, Wire::Map(_)));
        assert_eq!(wire.get("1"), Some(&Wire::Long(1)));
        assert_eq!(wire.get("k"), Some(&Wire::Long(2)));
    }
}
