//! # adapta — dynamic support for distributed auto-adaptive applications
//!
//! `adapta` is a Rust reproduction of the infrastructure described in
//! *"Dynamic Support for Distributed Auto-Adaptive Applications"*
//! (de Moura, Ururahy, Cerqueira, Rodriguez — ICDCS 2002 workshops): a
//! middleware stack that lets distributed, component-based applications
//!
//! * **select** the components that best suit their nonfunctional
//!   requirements through a [trading service](trading),
//! * **monitor** those requirements over time through an extensible
//!   [monitoring mechanism](monitor) with dynamically-installed aspects
//!   and remote-evaluated event predicates, and
//! * **react** to changes through [smart proxies](core::SmartProxy) whose
//!   adaptation strategies are written in an embedded interpreted
//!   language, [Rua](script), and can be replaced at run time.
//!
//! The original system was built on Lua + CORBA (LuaCorba). This
//! workspace implements every substrate from scratch: the [`script`]
//! interpreter, the [`idl`] type system, a dynamic [`orb`], the
//! [`trading`] service, the [`monitor`] mechanism, the adaptation
//! [`core`], a deterministic [`sim`]ulation substrate used by the
//! experiment harness, and a [`telemetry`] layer (distributed tracing
//! via request service contexts plus a process-wide metrics registry,
//! exported by every orb through its `_telemetry` object).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the paper's HelloWorld scenario; the
//! short version:
//!
//! ```
//! use adapta::core::{Infrastructure, ServerSpec};
//! use adapta::idl::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One process hosting a trader, two servers and a client.
//! let infra = Infrastructure::in_process()?;
//! for name in ["hostA", "hostB"] {
//!     infra.spawn_server(ServerSpec::echo("HelloService", name))?;
//! }
//! let proxy = infra
//!     .smart_proxy("HelloService")
//!     .constraint("LoadAvg < 50")
//!     .preference("min LoadAvg")
//!     .build()?;
//! let reply = proxy.invoke("hello", vec![Value::from("world")])?;
//! assert_eq!(reply, Value::from("hello, world"));
//! # Ok(())
//! # }
//! ```
#![doc(html_root_url = "https://docs.rs/adapta")]

pub use adapta_balancer as balancer;
pub use adapta_core as core;
pub use adapta_idl as idl;
pub use adapta_monitor as monitor;
pub use adapta_orb as orb;
pub use adapta_script as script;
pub use adapta_sim as sim;
pub use adapta_telemetry as telemetry;
pub use adapta_trading as trading;
