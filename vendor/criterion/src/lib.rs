//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark closure a small, fixed number of iterations and
//! prints the mean wall-clock time — enough for `cargo bench` to
//! execute and produce comparable numbers without the statistical
//! machinery (no warm-up modelling, outlier analysis, or plots).
//! CLI arguments (`--bench`, filters) are accepted and ignored.

use std::time::{Duration, Instant};

/// Iterations per benchmark (`CRITERION_ITERS`, default 50).
fn iterations() -> u64 {
    std::env::var("CRITERION_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// Re-export position matching real criterion's `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times one benchmark's iterations.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` for the configured iteration count, timing the
    /// whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = iterations();
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = n;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<N: Into<String>, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.total / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:?} mean over {} iters",
            self.name, id, mean, bencher.iters
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<N: Into<String>, F>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group runner, mirroring real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        std::env::set_var("CRITERION_ITERS", "3");
        let mut runs = 0u64;
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test");
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}
