//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic-simulation subset this workspace uses:
//! a seedable [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`]. Not cryptographically secure — the
//! workloads only need reproducible pseudo-randomness.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random word.
    fn next_u64(&mut self) -> u64;

    /// The next pseudo-random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded by
    /// splitmix64 expansion of a 64-bit seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice shuffling.
pub mod seq {
    use super::RngCore;

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
            let x = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
