//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset this workspace uses: [`Bytes`] (cheaply
//! cloneable immutable buffer), [`BytesMut`] (growable write buffer),
//! and the little-endian accessors of the [`Buf`]/[`BufMut`] traits.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

/// A growable byte buffer for assembling messages.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read access to a byte cursor, little-endian integer decoding.
///
/// Implemented for `&[u8]`; each getter consumes from the front.
/// Getters panic when the buffer is too short — callers are expected to
/// check [`Buf::remaining`] first (the workspace's decoders do).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns one byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes 4 bytes as a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes 8 bytes as a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes 8 bytes as a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Consumes 8 bytes as a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, tail) = self.split_at(1);
        *self = tail;
        head[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }
}

/// Write access to a growable buffer, little-endian integer encoding.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` little-endian (bit pattern preserved).
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_i64_le(-1);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_i64_le(), -1);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor, b"xyz");
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(Bytes::from_static(b"ab").to_vec(), vec![b'a', b'b']);
    }
}
