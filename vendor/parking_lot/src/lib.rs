//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the small API subset it actually uses: non-poisoning
//! [`Mutex`] and [`RwLock`] built on the `std` primitives. A poisoned
//! lock (a panic while held) is recovered rather than propagated,
//! matching `parking_lot`'s semantics of never poisoning.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            _ => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(1));
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
