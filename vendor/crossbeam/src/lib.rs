//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface this workspace uses is provided,
//! implemented over `std::sync::mpsc` (whose `Sender` has been
//! `Sync + Clone` since Rust 1.72).

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the buffer drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing received.
        Timeout,
        /// All senders dropped and the buffer drained.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking on a full bounded channel.
        ///
        /// # Errors
        ///
        /// Returns the value back when the receiver is disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Tx::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a value.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// A blocking iterator over received values.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel buffering at most `cap` values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_rendezvous_across_threads() {
            let (tx, rx) = bounded::<u8>(1);
            let h = std::thread::spawn(move || rx.recv().unwrap());
            tx.send(9).unwrap();
            assert_eq!(h.join().unwrap(), 9);
        }
    }
}
