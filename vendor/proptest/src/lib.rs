//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the `proptest!` macro
//! surface this workspace's property tests use. Differences from real
//! proptest: no shrinking (a failing case panics with its inputs via
//! the assertion message), and regex-string strategies support the
//! subset `.`/`[class]`/literal atoms with `{m,n}` quantifiers.
//!
//! Case count defaults to 64 per property and can be overridden with
//! the `PROPTEST_CASES` environment variable; the sequence is
//! deterministic unless `PROPTEST_SEED` is set.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---- runner --------------------------------------------------------------

/// Why a single generated case did not run to completion.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D00D)
}

/// The deterministic generator driving strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case` of a property.
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            state: base_seed() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---- the Strategy trait --------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (regenerating otherwise).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// one level shallower and wraps it (e.g. in containers). `_size`
    /// and `_branch` are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = OneOfStrategy::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// Uniform choice among strategies — the engine behind `prop_oneof!`.
pub struct OneOfStrategy<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOfStrategy<T> {
    /// Chooses uniformly among `arms` at each generation.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOfStrategy { arms }
    }
}

impl<T> Strategy for OneOfStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- primitive strategies ------------------------------------------------

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        // Bias towards boundary values now and then, like real proptest.
        match rng.below(16) {
            0 => 0,
            1 => 1,
            2 => -1,
            3 => i64::MAX,
            4 => i64::MIN,
            _ => rng.next_u64() as i64,
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // The full domain, special values included.
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MIN_POSITIVE,
            _ => {
                let mag = rng.unit_f64() * 2.0 - 1.0;
                let exp = rng.below(613) as i32 - 306;
                mag * 10f64.powi(exp)
            }
        }
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

// ---- tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

// ---- pattern strings -----------------------------------------------------

enum CharSet {
    /// `.` — any printable character (ASCII plus a few multibyte ones).
    Dot,
    /// `[...]` or a literal — an explicit choice of characters.
    Chars(Vec<char>),
}

struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

/// Parses the supported pattern subset: atoms are `.`, `[class]` (with
/// ranges and `\`-escapes) or literal characters; an atom may be
/// followed by `{m,n}` or `{n}`.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Dot
            }
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // Range `a-z` (a `-` just before `]` is literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        for code in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(code) {
                                members.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        members.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated [class] in pattern {pattern}");
                i += 1; // consume ']'
                CharSet::Chars(members)
            }
            '\\' if i + 1 < chars.len() => {
                i += 1;
                let c = chars[i];
                i += 1;
                CharSet::Chars(vec![c])
            }
            c => {
                i += 1;
                CharSet::Chars(vec![c])
            }
        };
        // Optional {m,n} / {n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated {{quantifier}} in pattern {pattern}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n: u32 = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn sample_dot(rng: &mut TestRng) -> char {
    // Mostly printable ASCII, sometimes multibyte, to exercise UTF-8
    // handling the way real proptest's `.` does.
    match rng.below(12) {
        0 => ['é', 'ß', '→', '日', '𝄞', 'ø'][rng.below(6) as usize],
        _ => char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).unwrap_or('x'),
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.max - atom.min) as u64 + 1;
            let count = atom.min + rng.below(span) as u32;
            for _ in 0..count {
                match &atom.set {
                    CharSet::Dot => out.push(sample_dot(rng)),
                    CharSet::Chars(members) => {
                        assert!(!members.is_empty(), "empty [class] in pattern {self}");
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

// ---- collections ---------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`, `hash_map`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashMap;
    use std::hash::Hash;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `HashMap<K, V>` with a size drawn from `len`.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    /// Generates hash maps from key and value strategies. Duplicate
    /// generated keys collapse, so maps may come out smaller than the
    /// drawn size (same as real proptest).
    pub fn hash_map<K, V>(key: K, value: V, len: Range<usize>) -> HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Eq + Hash,
    {
        HashMapStrategy { key, value, len }
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Eq + Hash,
    {
        type Value = HashMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---- macros --------------------------------------------------------------

/// Chooses uniformly among strategy arms (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOfStrategy::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_eq!($a, $b, $($fmt)+) };
}

/// Rejects the current case (another one is generated instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running [`cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let total = $crate::cases();
                let mut case = 0u64;
                let mut accepted = 0u64;
                while accepted < total && case < total * 20 {
                    let mut prop_rng = $crate::TestRng::for_case(case);
                    case += 1;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )+
    };
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strings_match_their_class() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        let lit = crate::Strategy::generate(&"[a-z0-9-]{0,12}", &mut rng);
        assert!(lit
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        let head = crate::Strategy::generate(&"[A-Z][a-z]{3}", &mut rng);
        assert_eq!(head.chars().count(), 4);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3i64..9, f in 0.0f64..=1.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn assume_rejects_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_collections_compose(
            v in crate::collection::vec(prop_oneof![Just(1i64), (5i64..8).prop_map(|x| x)], 1..6),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x == 1 || (5..8).contains(&x)));
        }
    }
}
